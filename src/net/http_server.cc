#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace_log.h"
#include "runtime/thread_pool.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace least {
namespace {

/// FNV-1a, matching the cache-key hash convention used by trace events.
uint64_t HashPath(std::string_view path) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : path) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void SetReadTimeout(int fd, std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

struct NetMetrics {
  Counter& connections;
  Counter& requests;
  Counter& responses;
  Counter& responses_error;
  Counter& read_timeouts;
  Gauge& active;

  static NetMetrics& Get() {
    static NetMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new NetMetrics{r.counter("net.http.connections"),
                            r.counter("net.http.requests"),
                            r.counter("net.http.responses"),
                            r.counter("net.http.responses_error"),
                            r.counter("net.http.read_timeouts"),
                            r.gauge("net.http.active_connections")};
    }();
    return *m;
  }
};

}  // namespace

HttpServer::HttpServer(HttpHandler handler, HttpServerOptions options)
    : handler_(std::move(handler)), options_(options) {
  LEAST_CHECK(handler_ != nullptr);
  if (options_.num_threads < 1) options_.num_threads = 1;
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  LEAST_CHECK(!running_.load() && listener_.joinable() == false);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(std::string("bind(127.0.0.1:") +
                            std::to_string(options_.port) +
                            "): " + std::strerror(err));
  }
  if (::listen(fd, options_.backlog) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(std::string("listen(): ") + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(std::string("getsockname(): ") +
                            std::strerror(err));
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stopping_.store(false);
  running_.store(true);
  pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  listener_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // Closing the listener makes the blocked accept(2) return with EBADF /
  // ECONNABORTED, ending the accept loop.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (listener_.joinable()) listener_.join();
  // Wake every connection blocked in recv(2); the serving task sees EOF (or
  // an error), finishes its in-flight response, and returns.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& [id, fd] : conns_) ::shutdown(fd, SHUT_RD);
  }
  if (pool_) {
    pool_->Shutdown();
    pool_.reset();
  }
  LEAST_CHECK(active_connections() == 0);
  port_ = 0;
}

std::string HttpServer::base_url() const {
  return "http://127.0.0.1:" + std::to_string(port_);
}

int HttpServer::active_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return static_cast<int>(conns_.size());
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (Stop) or unrecoverable
    }
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    // "Accept thread hiccup": an injected fault drops this connection on
    // the floor before it is registered — the client sees a reset, the
    // server keeps serving. Must run before registration so there is no
    // conns_ entry to leak.
    if (FailpointsArmed() && !FailpointHit("http.accept").ok()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SetReadTimeout(fd, options_.read_timeout);

    int64_t conn_id;
    size_t active;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn_id = ++next_conn_id_;
      conns_.emplace(conn_id, fd);
      active = conns_.size();
    }
    NetMetrics::Get().connections.Add();
    NetMetrics::Get().active.Set(static_cast<int64_t>(active));
    TraceEmit(TraceEventKind::kHttpAccept, conn_id, active, 0);

    const bool scheduled =
        pool_->Schedule([this, conn_id, fd] { ServeConnection(conn_id, fd); });
    if (!scheduled) {
      // Pool already shutting down: unregister and drop the connection.
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.erase(conn_id);
      ::close(fd);
    }
  }
}

void HttpServer::ServeConnection(int64_t conn_id, int fd) {
  HttpRequestParser parser(options_.limits);
  std::string pending;  // bytes received but not yet consumed (pipelining)
  char buf[16 << 10];
  bool close_connection = false;
  size_t fed = 0;  // bytes consumed toward the current request

  while (!close_connection) {
    // Drain already-buffered bytes first, then read more as needed.
    while (!parser.complete() && !parser.failed()) {
      if (pending.empty()) {
        // Injected read fault: treated exactly like a peer hanging up
        // mid-request — the connection closes, the server survives.
        if (FailpointsArmed() && !FailpointHit("http.read").ok()) {
          close_connection = true;
          break;
        }
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n > 0) {
          pending.assign(buf, static_cast<size_t>(n));
        } else if (n == 0) {
          close_connection = true;  // peer closed (or Stop() shut us down)
          break;
        } else if (errno == EINTR) {
          continue;
        } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // Read timeout. Mid-request it earns a 408; between requests the
          // idle keep-alive connection is just closed.
          NetMetrics::Get().read_timeouts.Add();
          if (fed > 0) {
            WriteResponse(fd, conn_id,
                          HttpResponse::Error(408, "request read timed out"),
                          /*keep_alive=*/false);
          }
          close_connection = true;
          break;
        } else {
          close_connection = true;
          break;
        }
      }
      size_t consumed = 0;
      const Status status = parser.Consume(pending, &consumed);
      pending.erase(0, consumed);
      fed += consumed;
      if (!status.ok()) break;  // parser.failed() now
    }

    if (parser.failed()) {
      TraceEmit(TraceEventKind::kHttpRequest, conn_id, 0, 0);
      NetMetrics::Get().requests.Add();
      WriteResponse(
          fd, conn_id,
          HttpResponse::Error(parser.http_status(),
                              parser.status().message()),
          /*keep_alive=*/false);
      break;
    }
    if (!parser.complete()) break;  // connection ended mid-request

    const HttpRequest& request = parser.request();
    NetMetrics::Get().requests.Add();
    TraceEmit(TraceEventKind::kHttpRequest, conn_id,
              request.target.size() + request.body.size(),
              HashPath(request.path));

    HttpResponse response = handler_(request);
    const bool keep_alive = request.keep_alive && !stopping_.load();
    if (!WriteResponse(fd, conn_id, response, keep_alive)) break;
    if (!keep_alive) break;
    parser.Reset();
    fed = 0;
  }

  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(conn_id);
    NetMetrics::Get().active.Set(static_cast<int64_t>(conns_.size()));
  }
  ::close(fd);
}

bool HttpServer::WriteResponse(int fd, int64_t conn_id,
                               const HttpResponse& response,
                               bool keep_alive) {
  NetMetrics::Get().responses.Add();
  if (response.status >= 400) NetMetrics::Get().responses_error.Add();
  TraceEmit(TraceEventKind::kHttpRespond, conn_id,
            static_cast<uint64_t>(response.status), response.body.size());

  const std::string head = SerializeResponseHead(response, keep_alive);
  for (const std::string* part : {&head, &response.body}) {
    size_t sent = 0;
    while (sent < part->size()) {
      const ssize_t n = ::send(fd, part->data() + sent, part->size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;  // peer went away mid-response
      }
      sent += static_cast<size_t>(n);
    }
  }
  return true;
}

}  // namespace least
