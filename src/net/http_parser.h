/// \file http_parser.h
/// \brief Incremental, bounded HTTP/1.1 request parser and response writer.
///
/// The REST front end (`net/http_server.h`) reads from untrusted sockets,
/// so the parser follows the same discipline as the checkpoint and trace
/// decoders (`io/model_serializer`, `obs/trace_log`): every size is bounded
/// before a byte is buffered, every malformed input yields a *precise*
/// error — mapped to the exact 4xx the peer should see — and no input, no
/// matter how truncated or bit-flipped, can crash or over-read
/// (`tests/test_http_parser.cc` sweeps every truncation prefix and
/// single-byte flip of valid requests under ASan+UBSan).
///
/// The parser is incremental: feed it whatever bytes the socket produced
/// (`Consume`), and it either needs more input, completes a request, or
/// fails terminally. One parser instance serves a keep-alive connection by
/// `Reset()`ing between requests; bytes beyond the first request's end are
/// left unconsumed for the next round (pipelining-safe).
///
/// Supported framing: bodies by `Content-Length` or
/// `Transfer-Encoding: chunked` (trailers are parsed and discarded);
/// requests with neither have no body. Unsupported transfer codings are
/// rejected with 501, oversized headers with 431, oversized bodies with
/// 413, everything else malformed with 400, and HTTP versions other than
/// 1.0/1.1 with 505.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace least {

/// \brief One parsed request.
struct HttpRequest {
  std::string method;   ///< uppercase token as sent ("GET", "POST", ...)
  std::string target;   ///< raw request target ("/jobs/3?x=1")
  std::string path;     ///< target up to '?', percent-decoded
  std::string query;    ///< target after '?', raw (may be empty)
  int version_minor = 1;  ///< 0 for HTTP/1.0, 1 for HTTP/1.1
  /// Headers in arrival order; names lowercased (values trimmed of optional
  /// whitespace, otherwise verbatim).
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;  ///< resolved from version + Connection header

  /// Case-insensitive lookup (names are stored lowercased); empty view when
  /// absent.
  std::string_view Header(std::string_view lowercase_name) const;
  /// Value of `name` in the query string ("since=3&x=1"), percent-decoded;
  /// `fallback` when absent.
  std::string QueryParam(std::string_view name,
                         std::string_view fallback = {}) const;
};

/// \brief Input bounds enforced *before* buffering (see file comment for
/// the status code each bound maps to).
struct HttpParserLimits {
  size_t max_request_line = 8 << 10;  ///< method + target + version
  size_t max_header_bytes = 16 << 10;  ///< all header lines together
  int max_headers = 100;
  size_t max_body_bytes = 16 << 20;  ///< content-length or chunked total
};

/// \brief Incremental request parser (one connection's read side).
class HttpRequestParser {
 public:
  explicit HttpRequestParser(HttpParserLimits limits = {})
      : limits_(limits) {}

  /// Feeds bytes from the socket. Consumes up to one complete request;
  /// `*consumed` reports how many of `bytes` were used (the remainder
  /// belongs to the next request on this connection). Returns the parse
  /// status: OK both when the request completed and when more input is
  /// needed (check `complete()`); a non-OK status is terminal for the
  /// connection and `http_status()` names the response code to send.
  Status Consume(std::string_view bytes, size_t* consumed);

  bool complete() const { return phase_ == Phase::kComplete; }
  bool failed() const { return phase_ == Phase::kError; }
  /// The parsed request; valid once `complete()`.
  const HttpRequest& request() const { return request_; }
  /// HTTP status code matching the terminal parse error (400/413/431/501/
  /// 505); 0 while not failed.
  int http_status() const { return http_status_; }
  /// The terminal parse error; OK while not failed.
  const Status& status() const { return status_; }

  /// Ready for the next request on the same connection (keep-alive). The
  /// parser may only be reset from the complete state.
  void Reset();

 private:
  enum class Phase {
    kRequestLine,
    kHeaders,
    kBody,        ///< reading `body_remaining_` content-length bytes
    kChunkSize,   ///< reading a chunk-size line
    kChunkData,   ///< reading `body_remaining_` chunk bytes
    kChunkCrlf,   ///< reading the CRLF after chunk data
    kTrailers,    ///< reading (and discarding) trailer lines
    kComplete,
    kError,
  };

  /// Enters the terminal error state; always returns the stored status so
  /// call sites can `return Fail(...)`.
  Status Fail(int http_status, std::string message);
  Status ParseRequestLine(std::string_view line);
  Status ParseHeaderLine(std::string_view line);
  /// Validates headers once all have arrived and selects the body framing.
  Status BeginBody();

  HttpParserLimits limits_;
  Phase phase_ = Phase::kRequestLine;
  std::string buffer_;  ///< unparsed input for the current line/body
  size_t header_bytes_ = 0;
  uint64_t body_remaining_ = 0;
  HttpRequest request_;
  Status status_;
  int http_status_ = 0;
};

/// \brief One response to serialize.
struct HttpResponse {
  int status = 200;
  /// Extra headers; Content-Length, Date, and Server are emitted
  /// automatically by `SerializeResponseHead`.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string content_type = "application/json";
  std::string body;

  static HttpResponse Json(int status, std::string body);
  /// application/json `{"error": <message>}` with the status's reason.
  static HttpResponse Error(int status, std::string_view message);
};

/// Canonical reason phrase ("OK", "Not Found", ...); "Unknown" for codes
/// without one.
std::string_view HttpStatusReason(int status);

/// Serializes the status line + headers + blank line (not the body). The
/// body is framed by Content-Length; `keep_alive` selects the Connection
/// header.
std::string SerializeResponseHead(const HttpResponse& response,
                                  bool keep_alive);

/// Percent-decodes `text` ("%2F" → "/", "+" is NOT treated as space —
/// query values here are paths and integers). Invalid escapes are passed
/// through verbatim (decoding is for routing convenience, not validation).
std::string PercentDecode(std::string_view text);

}  // namespace least
