/// \file json.h
/// \brief Minimal JSON value, parser, and writer for the REST front end.
///
/// The HTTP layer speaks JSON (`POST /jobs` bodies, status/changes
/// responses) without external dependencies, so this file carries the
/// smallest complete implementation that upholds the repo's serializer
/// discipline: every byte of untrusted input is bounds-checked, every
/// malformed document fails with `kInvalidArgument` and a precise
/// byte-offset message, and resource bounds (nesting depth, total values)
/// are enforced so a hostile body cannot exhaust the server.
///
/// Scope: UTF-8 pass-through (no normalization), numbers as `double` (the
/// option fields the service parses are doubles and small integers — an
/// integral check is provided for id-like fields), `\uXXXX` escapes decode
/// to UTF-8. Object member order is preserved; duplicate keys are rejected
/// (a request meaning two different things depending on reader is a bug).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace least {

/// \brief One JSON value (tree-owning).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  ///< null
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = d;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; reading the wrong kind returns the type's zero value
  /// (callers validate kind first — route handlers turn mismatches into
  /// precise 400s before touching the value).
  bool as_bool() const { return is_bool() ? bool_ : false; }
  double as_number() const { return is_number() ? number_ : 0.0; }
  const std::string& as_string() const {
    static const std::string kEmpty;
    return is_string() ? string_ : kEmpty;
  }

  /// True when the value is a number that is exactly an int64 (id fields,
  /// row counts). `out` receives the integer.
  bool IntegerValue(int64_t* out) const;

  // --- array ---
  const std::vector<JsonValue>& items() const { return items_; }
  void Append(JsonValue v) { items_.push_back(std::move(v)); }

  // --- object ---
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  void Set(std::string key, JsonValue v) {
    members_.emplace_back(std::move(key), std::move(v));
  }
  /// Member lookup; null when absent.
  const JsonValue* Find(std::string_view key) const;

  /// Serializes (compact, no whitespace). Strings are escaped; non-finite
  /// numbers render as null (JSON has no representation for them).
  std::string Dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// \brief Resource bounds for `ParseJson` (defaults sized for `POST /jobs`
/// bodies: small option maps plus an optional inline dataset).
struct JsonLimits {
  int max_depth = 32;          ///< nesting depth of arrays/objects
  int64_t max_values = 1 << 20;  ///< total parsed values (DoS bound)
};

/// Parses one JSON document (the whole input must be consumed; trailing
/// non-whitespace is an error). Malformed input fails with
/// `kInvalidArgument` and a byte-offset message, never a crash.
Result<JsonValue> ParseJson(std::string_view text, JsonLimits limits = {});

/// Escapes and quotes `s` as a JSON string literal (used by handlers that
/// build small documents without going through `JsonValue`).
std::string JsonQuote(std::string_view s);

}  // namespace least
