#include "net/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace least {

bool JsonValue::IntegerValue(int64_t* out) const {
  if (!is_number()) return false;
  if (!std::isfinite(number_)) return false;
  if (number_ < -9.007199254740992e15 || number_ > 9.007199254740992e15) {
    return false;  // outside the exactly-representable integer range
  }
  const double rounded = std::nearbyint(number_);
  if (rounded != number_) return false;
  *out = static_cast<int64_t>(rounded);
  return true;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void DumpTo(const JsonValue& v, std::string* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      return;
    case JsonValue::Kind::kBool:
      *out += v.as_bool() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber: {
      const double d = v.as_number();
      if (!std::isfinite(d)) {
        *out += "null";
        return;
      }
      char buf[40];
      // %.17g round-trips every double; trim to the shortest exact form is
      // not needed for machine consumers.
      std::snprintf(buf, sizeof buf, "%.17g", d);
      *out += buf;
      return;
    }
    case JsonValue::Kind::kString:
      *out += JsonQuote(v.as_string());
      return;
    case JsonValue::Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out->push_back(',');
        first = false;
        DumpTo(item, out);
      }
      out->push_back(']');
      return;
    }
    case JsonValue::Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) out->push_back(',');
        first = false;
        *out += JsonQuote(key);
        out->push_back(':');
        DumpTo(value, out);
      }
      out->push_back('}');
      return;
    }
  }
}

/// Recursive-descent parser over an immutable text with an explicit cursor;
/// every method either advances or reports `kInvalidArgument` with the byte
/// offset where parsing stopped.
class Parser {
 public:
  Parser(std::string_view text, const JsonLimits& limits)
      : text_(text), limits_(limits) {}

  Result<JsonValue> Parse() {
    JsonValue root;
    LEAST_RETURN_IF_ERROR(ParseValue(0, &root));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing bytes after JSON document");
    }
    return root;
  }

 private:
  Status Error(std::string what) const {
    return Status::InvalidArgument("JSON error at byte " +
                                   std::to_string(pos_) + ": " +
                                   std::move(what));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status ParseValue(int depth, JsonValue* out) {
    if (depth > limits_.max_depth) {
      return Error("nesting deeper than " + std::to_string(limits_.max_depth));
    }
    if (++values_ > limits_.max_values) {
      return Error("more than " + std::to_string(limits_.max_values) +
                   " values");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of document");
    const char c = text_[pos_];
    switch (c) {
      case 'n':
        if (!Literal("null")) return Error("bad literal (expected null)");
        *out = JsonValue::Null();
        return Status::Ok();
      case 't':
        if (!Literal("true")) return Error("bad literal (expected true)");
        *out = JsonValue::Bool(true);
        return Status::Ok();
      case 'f':
        if (!Literal("false")) return Error("bad literal (expected false)");
        *out = JsonValue::Bool(false);
        return Status::Ok();
      case '"': {
        std::string s;
        LEAST_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::String(std::move(s));
        return Status::Ok();
      }
      case '[':
        return ParseArray(depth, out);
      case '{':
        return ParseObject(depth, out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      pos_ = start;
      return Error("invalid value");
    }
    // Grammar check (JSON forbids leading zeros, bare dots, etc.) before
    // handing the slice to strtod.
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digit required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digit required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string slice(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(slice.c_str(), &end);
    if (end != slice.c_str() + slice.size()) {
      return Error("invalid number");
    }
    // Overflow to +-inf is accepted as the nearest representable double;
    // JSON itself places no range limit.
    *out = JsonValue::Number(d);
    return Status::Ok();
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::Ok();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c < 0x20) return Error("raw control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          LEAST_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            LEAST_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
  }

  Status ParseArray(int depth, JsonValue* out) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      JsonValue item;
      LEAST_RETURN_IF_ERROR(ParseValue(depth + 1, &item));
      out->Append(std::move(item));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return Status::Ok();
      if (c != ',') {
        --pos_;
        return Error("expected ',' or ']' in array");
      }
    }
  }

  Status ParseObject(int depth, JsonValue* out) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected string key in object");
      }
      std::string key;
      LEAST_RETURN_IF_ERROR(ParseString(&key));
      if (out->Find(key) != nullptr) {
        return Error("duplicate object key \"" + key + "\"");
      }
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after object key");
      }
      ++pos_;
      JsonValue value;
      LEAST_RETURN_IF_ERROR(ParseValue(depth + 1, &value));
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return Status::Ok();
      if (c != ',') {
        --pos_;
        return Error("expected ',' or '}' in object");
      }
    }
  }

  std::string_view text_;
  const JsonLimits& limits_;
  size_t pos_ = 0;
  int64_t values_ = 0;
};

}  // namespace

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

Result<JsonValue> ParseJson(std::string_view text, JsonLimits limits) {
  return Parser(text, limits).Parse();
}

}  // namespace least
