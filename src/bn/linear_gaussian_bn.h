/// \file linear_gaussian_bn.h
/// \brief A fitted linear-Gaussian Bayesian network on top of a learned
/// structure.
///
/// Structure learning (LEAST/NOTEARS) outputs the DAG; the paper's
/// applications then *use* the network — Section I: "by further specifying
/// the conditional probability distributions based on the causal structure,
/// one eventually obtains a joint probability distribution", and Section
/// VI-C walks the learned item graph multiplying ratings by edge weights to
/// predict preferences. This module closes that loop for the LSEM case:
/// given a support (from a learner) and data, it refits each node's linear
/// CPD by ordinary least squares, estimates per-node noise variances, and
/// provides density evaluation, BIC scoring, ancestral sampling and
/// prediction.

#pragma once

#include <vector>

#include "graph/dag.h"
#include "linalg/dense_matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace least {

/// \brief Linear-Gaussian BN: X_i = mu_i + Σ_p w_pi X_p + N(0, sigma_i²).
class LinearGaussianBn {
 public:
  /// Refits CPDs on `x` (n x d) for the DAG support of `structure`
  /// (|w| > support_tol defines the parent sets; learned weight values are
  /// discarded — OLS refit is how one de-biases the L1-shrunk estimates).
  /// Fails if the support is cyclic or `x` is too small to fit the largest
  /// parent set.
  static Result<LinearGaussianBn> Fit(const DenseMatrix& structure,
                                      const DenseMatrix& x,
                                      double support_tol = 1e-9);

  int dim() const { return weights_.rows(); }
  /// Refitted edge weights (same support as the input structure).
  const DenseMatrix& weights() const { return weights_; }
  /// Per-node intercepts.
  const std::vector<double>& intercepts() const { return intercepts_; }
  /// Per-node residual variances.
  const std::vector<double>& noise_variances() const {
    return noise_variances_;
  }
  int64_t num_edges() const { return weights_.CountNonZeros(); }

  /// Log-density of one fully observed sample (length d).
  double LogLikelihood(std::span<const double> sample) const;

  /// Average log-density over the rows of `x`.
  double MeanLogLikelihood(const DenseMatrix& x) const;

  /// Bayesian information criterion on `x`: -2 logL + params * ln(n),
  /// with params = #edges + 2d (intercepts and variances). Lower is better.
  double Bic(const DenseMatrix& x) const;

  /// Draws n samples by ancestral sampling.
  DenseMatrix Sample(int n, Rng& rng) const;

  /// Predicts node `target` for a partially observed sample: parents are
  /// read from `sample`, missing ancestors are *not* imputed (pure CPD
  /// mean). This is the paper's Section VI-C item-score reading.
  double PredictMean(int target, std::span<const double> sample) const;

 private:
  LinearGaussianBn() = default;

  DenseMatrix weights_;
  std::vector<double> intercepts_;
  std::vector<double> noise_variances_;
  std::vector<int> topo_order_;
};

/// \brief Bootstrap edge-confidence estimation.
///
/// Production monitoring (Section VI-A) acts on learned edges; bootstrap
/// stability is the standard way to attach confidence to them. `Learn` is
/// any callable DenseMatrix(const DenseMatrix& x) returning a weighted
/// adjacency; it is invoked on `rounds` row-resampled copies of `x`, and
/// the returned matrix holds, per ordered pair, the fraction of rounds in
/// which that edge appeared (|w| > edge_tol).
template <typename Learner>
DenseMatrix BootstrapEdgeConfidence(const DenseMatrix& x, int rounds,
                                    Learner&& learn, Rng& rng,
                                    double edge_tol = 1e-9) {
  LEAST_CHECK(rounds > 0);
  const int n = x.rows();
  const int d = x.cols();
  DenseMatrix counts(d, d);
  DenseMatrix resampled(n, d);
  for (int round = 0; round < rounds; ++round) {
    for (int i = 0; i < n; ++i) {
      const int src = rng.UniformInt(n);
      for (int j = 0; j < d; ++j) resampled(i, j) = x(src, j);
    }
    DenseMatrix w = learn(static_cast<const DenseMatrix&>(resampled));
    LEAST_CHECK(w.rows() == d && w.cols() == d);
    for (int i = 0; i < d; ++i) {
      for (int j = 0; j < d; ++j) {
        if (std::fabs(w(i, j)) > edge_tol) counts(i, j) += 1.0;
      }
    }
  }
  counts.Scale(1.0 / rounds);
  return counts;
}

}  // namespace least
