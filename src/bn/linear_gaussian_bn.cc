#include "bn/linear_gaussian_bn.h"

#include <cmath>

#include "linalg/lu.h"

namespace least {

Result<LinearGaussianBn> LinearGaussianBn::Fit(const DenseMatrix& structure,
                                               const DenseMatrix& x,
                                               double support_tol) {
  if (structure.rows() != structure.cols()) {
    return Status::InvalidArgument("structure must be square");
  }
  const int d = structure.rows();
  if (x.cols() != d) {
    return Status::InvalidArgument("data/structure dimension mismatch");
  }
  const int n = x.rows();
  if (n < 2) {
    return Status::InvalidArgument("need at least two samples");
  }
  AdjacencyList adj = AdjacencyFromDense(structure, support_tol);
  auto order = TopologicalSort(adj);
  if (!order.ok()) {
    return Status::InvalidArgument("structure support is cyclic");
  }

  LinearGaussianBn bn;
  bn.weights_ = DenseMatrix(d, d);
  bn.intercepts_.assign(d, 0.0);
  bn.noise_variances_.assign(d, 0.0);
  bn.topo_order_ = std::move(order).value();

  // Parent lists per node.
  std::vector<std::vector<int>> parents(d);
  for (int p = 0; p < d; ++p) {
    for (int child : adj[p]) parents[child].push_back(p);
  }

  for (int node = 0; node < d; ++node) {
    const auto& pa = parents[node];
    const int k = static_cast<int>(pa.size());
    if (n <= k + 1) {
      return Status::InvalidArgument(
          "too few samples (" + std::to_string(n) + ") to fit node " +
          std::to_string(node) + " with " + std::to_string(k) + " parents");
    }
    // OLS with intercept: solve (Z^T Z) beta = Z^T y, Z = [1, parents].
    const int m = k + 1;
    DenseMatrix ztz(m, m);
    std::vector<double> zty(m, 0.0);
    for (int s = 0; s < n; ++s) {
      const double* row = x.row(s);
      const double y = row[node];
      // z = (1, x_pa...).
      ztz(0, 0) += 1.0;
      zty[0] += y;
      for (int a = 0; a < k; ++a) {
        const double za = row[pa[a]];
        ztz(0, a + 1) += za;
        ztz(a + 1, 0) += za;
        zty[a + 1] += za * y;
        for (int b = 0; b < k; ++b) {
          ztz(a + 1, b + 1) += za * row[pa[b]];
        }
      }
    }
    // Tiny ridge keeps collinear parents solvable.
    for (int i = 0; i < m; ++i) ztz(i, i) += 1e-9 * n;
    auto lu = LuFactorization::Factor(ztz);
    if (!lu.ok()) {
      return Status::Internal("singular design matrix at node " +
                              std::to_string(node));
    }
    std::vector<double> beta = lu.value().Solve(zty);
    bn.intercepts_[node] = beta[0];
    for (int a = 0; a < k; ++a) bn.weights_(pa[a], node) = beta[a + 1];

    // Residual variance (ML estimate; floored for degenerate columns).
    double rss = 0.0;
    for (int s = 0; s < n; ++s) {
      const double* row = x.row(s);
      double mean = beta[0];
      for (int a = 0; a < k; ++a) mean += beta[a + 1] * row[pa[a]];
      const double r = row[node] - mean;
      rss += r * r;
    }
    bn.noise_variances_[node] = std::max(rss / n, 1e-12);
  }
  return bn;
}

double LinearGaussianBn::LogLikelihood(std::span<const double> sample) const {
  const int d = dim();
  LEAST_CHECK(static_cast<int>(sample.size()) == d);
  constexpr double kLog2Pi = 1.8378770664093454;
  double ll = 0.0;
  for (int node = 0; node < d; ++node) {
    double mean = intercepts_[node];
    for (int p = 0; p < d; ++p) {
      const double w = weights_(p, node);
      if (w != 0.0) mean += w * sample[p];
    }
    const double var = noise_variances_[node];
    const double r = sample[node] - mean;
    ll += -0.5 * (kLog2Pi + std::log(var) + r * r / var);
  }
  return ll;
}

double LinearGaussianBn::MeanLogLikelihood(const DenseMatrix& x) const {
  LEAST_CHECK(x.cols() == dim());
  if (x.rows() == 0) return 0.0;
  double total = 0.0;
  for (int s = 0; s < x.rows(); ++s) {
    total += LogLikelihood(std::span<const double>(x.row(s), dim()));
  }
  return total / x.rows();
}

double LinearGaussianBn::Bic(const DenseMatrix& x) const {
  const double n = std::max(1, x.rows());
  const double log_l = MeanLogLikelihood(x) * n;
  const double params = static_cast<double>(num_edges()) + 2.0 * dim();
  return -2.0 * log_l + params * std::log(n);
}

DenseMatrix LinearGaussianBn::Sample(int n, Rng& rng) const {
  const int d = dim();
  DenseMatrix x(n, d);
  for (int s = 0; s < n; ++s) {
    double* row = x.row(s);
    for (int node : topo_order_) {
      double v = intercepts_[node] +
                 rng.Gaussian(0.0, std::sqrt(noise_variances_[node]));
      for (int p = 0; p < d; ++p) {
        const double w = weights_(p, node);
        if (w != 0.0) v += w * row[p];
      }
      row[node] = v;
    }
  }
  return x;
}

double LinearGaussianBn::PredictMean(int target,
                                     std::span<const double> sample) const {
  const int d = dim();
  LEAST_CHECK(target >= 0 && target < d);
  LEAST_CHECK(static_cast<int>(sample.size()) == d);
  double mean = intercepts_[target];
  for (int p = 0; p < d; ++p) {
    const double w = weights_(p, target);
    if (w != 0.0) mean += w * sample[p];
  }
  return mean;
}

}  // namespace least
