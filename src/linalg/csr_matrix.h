/// \file csr_matrix.h
/// \brief Compressed sparse row matrix for the LEAST-SP code path.
///
/// The sparse LEAST implementation (paper Section IV, "LEAST-SP") keeps the
/// weight matrix W in CSR form throughout optimization: the sparsity
/// *pattern* is fixed between compactions while the *values* are mutated by
/// the optimizer. All constraint kernels run in O(nnz) over this structure.

#pragma once

#include <cstdint>
#include <vector>

#include "linalg/dense_matrix.h"
#include "util/check.h"

namespace least {

/// \brief One (row, col, value) entry used to build a `CsrMatrix`.
struct Triplet {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

/// \brief CSR matrix: `row_ptr` (rows+1), parallel `col_idx` / `values`.
///
/// Column indices are sorted within each row and duplicate coordinates are
/// coalesced at construction. Values are freely mutable; the pattern changes
/// only via `Compact()` (which drops explicit zeros) or reconstruction.
class CsrMatrix {
 public:
  /// Empty 0x0 matrix.
  CsrMatrix() = default;

  /// All-zero rows x cols matrix with an empty pattern.
  CsrMatrix(int rows, int cols) : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {
    LEAST_CHECK(rows >= 0 && cols >= 0);
  }

  /// Builds from triplets; duplicates are summed, columns sorted per row.
  static CsrMatrix FromTriplets(int rows, int cols,
                                std::vector<Triplet> triplets);

  /// Converts a dense matrix, keeping entries with |v| > tol.
  static CsrMatrix FromDense(const DenseMatrix& dense, double tol = 0.0);

  /// Expands to dense (use only for small matrices / tests).
  DenseMatrix ToDense() const;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  /// Number of stored entries (including explicit zeros).
  int64_t nnz() const { return static_cast<int64_t>(col_idx_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  /// Returns the stored value at (i, j) or 0 when outside the pattern.
  /// O(log nnz(row i)); intended for tests and spot checks.
  double At(int i, int j) const;

  /// Row index of the entry stored at flat position `e` (O(log rows)).
  int EntryRow(int64_t e) const;

  /// Vector of row sums over stored values.
  std::vector<double> RowSums() const;
  /// Vector of column sums over stored values.
  std::vector<double> ColSums() const;

  /// Sum over stored values of |v| (entry-wise L1).
  double L1Norm() const;
  /// Maximum |v| over stored values.
  double MaxAbs() const;
  /// Number of stored values with |v| > tol.
  int64_t CountNonZeros(double tol = 0.0) const;

  /// Sets stored values with |v| < threshold (strict) to exactly zero,
  /// keeping the pattern. Returns the number of zeroed entries.
  int64_t ThresholdValues(double threshold);

  /// Drops stored entries whose value is exactly zero. Fills
  /// `kept_old_positions` (if non-null) with the old flat indices of the
  /// surviving entries so parallel optimizer state can be compacted too.
  void Compact(std::vector<int64_t>* kept_old_positions);

  /// y = A x over stored entries.
  void MatvecInto(std::span<const double> x, std::span<double> y) const;

  /// y = A^T x over stored entries.
  void MatvecTransposeInto(std::span<const double> x,
                           std::span<double> y) const;

  /// True when both matrices have identical shape and pattern.
  bool SamePattern(const CsrMatrix& other) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int64_t> row_ptr_;
  std::vector<int> col_idx_;
  std::vector<double> values_;
};

}  // namespace least
