#include "linalg/lu.h"

#include <cmath>
#include <numeric>

namespace least {

Status LuFactorInPlace(DenseMatrix* a, std::vector<int>* perm) {
  LEAST_CHECK(a != nullptr && perm != nullptr);
  if (a->rows() != a->cols()) {
    return Status::InvalidArgument("LU requires a square matrix");
  }
  const int n = a->rows();
  DenseMatrix& lu = *a;
  perm->resize(n);
  std::iota(perm->begin(), perm->end(), 0);

  for (int k = 0; k < n; ++k) {
    // Partial pivoting: largest |entry| in column k at/below the diagonal.
    int pivot = k;
    double best = std::fabs(lu(k, k));
    for (int i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best == 0.0) {
      return Status::Internal("singular matrix in LU factorization");
    }
    if (pivot != k) {
      std::swap((*perm)[k], (*perm)[pivot]);
      for (int j = 0; j < n; ++j) std::swap(lu(k, j), lu(pivot, j));
    }
    const double inv_pivot = 1.0 / lu(k, k);
    for (int i = k + 1; i < n; ++i) {
      const double factor = lu(i, k) * inv_pivot;
      lu(i, k) = factor;
      if (factor == 0.0) continue;
      const double* uk = lu.row(k);
      double* ui = lu.row(i);
      for (int j = k + 1; j < n; ++j) ui[j] -= factor * uk[j];
    }
  }
  return Status::Ok();
}

void LuSolveInPlace(const DenseMatrix& lu, const std::vector<int>& perm,
                    DenseMatrix* b, std::span<double> scratch) {
  const int n = lu.rows();
  LEAST_CHECK(b != nullptr && b->rows() == n);
  LEAST_CHECK(static_cast<int>(perm.size()) == n);
  LEAST_CHECK(static_cast<int>(scratch.size()) >= n);
  DenseMatrix& x = *b;
  for (int c = 0; c < x.cols(); ++c) {
    // Forward substitution with permuted RHS (L has implicit unit diagonal).
    for (int i = 0; i < n; ++i) {
      double s = x(perm[i], c);
      const double* li = lu.row(i);
      for (int j = 0; j < i; ++j) s -= li[j] * scratch[j];
      scratch[i] = s;
    }
    // Back substitution with U.
    for (int i = n - 1; i >= 0; --i) {
      const double* ui = lu.row(i);
      double s = scratch[i];
      for (int j = i + 1; j < n; ++j) s -= ui[j] * scratch[j];
      scratch[i] = s / ui[i];
    }
    for (int i = 0; i < n; ++i) x(i, c) = scratch[i];
  }
}

Result<LuFactorization> LuFactorization::Factor(const DenseMatrix& a) {
  DenseMatrix lu = a;
  std::vector<int> perm;
  Status st = LuFactorInPlace(&lu, &perm);
  if (!st.ok()) return st;
  return LuFactorization(std::move(lu), std::move(perm));
}

std::vector<double> LuFactorization::Solve(std::span<const double> b) const {
  const int n = dim();
  LEAST_CHECK(static_cast<int>(b.size()) == n);
  std::vector<double> x(n);
  // Forward substitution with permuted RHS (L has implicit unit diagonal).
  for (int i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    const double* li = lu_.row(i);
    for (int j = 0; j < i; ++j) s -= li[j] * x[j];
    x[i] = s;
  }
  // Back substitution with U.
  for (int i = n - 1; i >= 0; --i) {
    const double* ui = lu_.row(i);
    double s = x[i];
    for (int j = i + 1; j < n; ++j) s -= ui[j] * x[j];
    x[i] = s / ui[i];
  }
  return x;
}

DenseMatrix LuFactorization::Solve(const DenseMatrix& b) const {
  DenseMatrix x = b;
  std::vector<double> scratch(dim());
  LuSolveInPlace(lu_, perm_, &x, scratch);
  return x;
}

}  // namespace least
