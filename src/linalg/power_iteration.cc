#include "linalg/power_iteration.h"

#include <cmath>

#include "util/rng.h"

namespace least {

namespace {

// Shared driver: `matvec(x, y)` computes y = A x.
//
// For irreducible *periodic* non-negative matrices (e.g. a pure 2-cycle)
// the per-step norm ratio ||Ax_k|| oscillates around the Perron root
// instead of converging, but the geometric mean of the ratios over a tail
// window converges to it (the product over a full period telescopes to
// ||A^p x|| / ||x|| ~ rho^p). We therefore return the plain estimate when
// it converges and the tail geometric mean otherwise.
template <typename Matvec>
double PowerIterate(int d, Matvec&& matvec, const PowerIterationOptions& opts,
                    Workspace* ws_opt) {
  if (d == 0) return 0.0;
  Workspace local;
  Workspace& ws = ws_opt != nullptr ? *ws_opt : local;
  WorkspaceScope scope(ws);
  Rng rng(opts.seed);
  std::vector<double>& x = ws.Vector(d);
  std::vector<double>& y = ws.Vector(d);
  for (double& v : x) v = rng.Uniform(0.5, 1.0);

  const int burn_in = std::min(opts.max_iters / 2, 32);
  double lambda = 0.0;
  double log_sum = 0.0;
  int log_count = 0;
  for (int it = 0; it < opts.max_iters; ++it) {
    matvec(x, y);
    double norm = 0.0;
    for (double v : y) norm += v * v;
    norm = std::sqrt(norm);
    if (norm < 1e-300) return 0.0;  // nilpotent direction: radius ~ 0
    const double next = norm;       // ||Ax_k|| with ||x_k|| = 1
    for (int i = 0; i < d; ++i) x[i] = y[i] / norm;
    if (it >= burn_in) {
      log_sum += std::log(next);
      ++log_count;
    }
    if (it > 0 && std::fabs(next - lambda) <=
                      opts.tol * std::max(1.0, std::fabs(next))) {
      return next;
    }
    lambda = next;
  }
  return log_count > 0 ? std::exp(log_sum / log_count) : lambda;
}

}  // namespace

double SpectralRadius(const DenseMatrix& a, const PowerIterationOptions& opts,
                      Workspace* ws) {
  LEAST_CHECK(a.rows() == a.cols());
  return PowerIterate(
      a.rows(),
      [&](const std::vector<double>& x, std::vector<double>& y) {
        MatvecInto(a, x, y);
      },
      opts, ws);
}

double SpectralRadius(const CsrMatrix& a, const PowerIterationOptions& opts,
                      Workspace* ws) {
  LEAST_CHECK(a.rows() == a.cols());
  return PowerIterate(
      a.rows(),
      [&](const std::vector<double>& x, std::vector<double>& y) {
        a.MatvecInto(x, y);
      },
      opts, ws);
}

}  // namespace least
