#include "linalg/workspace.h"

namespace least {

DenseMatrix& Workspace::Matrix(int rows, int cols) {
  if (matrix_top_ == matrices_.size()) {
    matrices_.push_back(std::make_unique<DenseMatrix>());
    ++grow_events_;
  }
  DenseMatrix& m = *matrices_[matrix_top_++];
  const size_t need = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  if (need > m.capacity()) ++grow_events_;
  m.Reshape(rows, cols);
  return m;
}

std::vector<double>& Workspace::Vector(size_t n) {
  if (vector_top_ == vectors_.size()) {
    vectors_.push_back(std::make_unique<std::vector<double>>());
    ++grow_events_;
  }
  std::vector<double>& v = *vectors_[vector_top_++];
  if (n > v.capacity()) ++grow_events_;
  v.resize(n);
  return v;
}

std::vector<int>& Workspace::IntVector(size_t n) {
  if (int_vector_top_ == int_vectors_.size()) {
    int_vectors_.push_back(std::make_unique<std::vector<int>>());
    ++grow_events_;
  }
  std::vector<int>& v = *int_vectors_[int_vector_top_++];
  if (n > v.capacity()) ++grow_events_;
  v.resize(n);
  return v;
}

void Workspace::Reset() {
  matrix_top_ = 0;
  vector_top_ = 0;
  int_vector_top_ = 0;
}

size_t Workspace::retained_bytes() const {
  size_t bytes = 0;
  for (const auto& m : matrices_) bytes += m->capacity() * sizeof(double);
  for (const auto& v : vectors_) bytes += v->capacity() * sizeof(double);
  for (const auto& v : int_vectors_) bytes += v->capacity() * sizeof(int);
  return bytes;
}

}  // namespace least
