/// \file hutchinson.h
/// \brief Stochastic estimation of Tr(e^S) - d via sparse matvecs.
///
/// Fig. 5 of the paper plots the NOTEARS constraint value h(W) alongside the
/// LEAST bound on graphs with 10^4–10^5 nodes, where forming e^S densely is
/// impossible. The Hutchinson estimator
///   Tr(e^S) - d = sum_{k>=1} Tr(S^k)/k!
///               ~ mean_z sum_{k=1..K} z^T S^k z / k!,   z ~ Rademacher,
/// needs only `probes * terms` sparse matvecs and O(d) memory, which is how
/// we reproduce the h(W) curves at scale.

#pragma once

#include "linalg/csr_matrix.h"
#include "util/rng.h"

namespace least {

/// \brief Options for `EstimateExpmTraceMinusDim`.
struct HutchinsonOptions {
  int probes = 16;   ///< Rademacher probe vectors (variance ~ 1/probes)
  int terms = 24;    ///< Taylor terms; k! decay makes ~20 ample for ||S||<~5
  uint64_t seed = 11;
};

/// Estimates h(S) = Tr(e^S) - d for a non-negative sparse matrix.
/// Deterministic for a fixed seed. Exact value is returned for probes
/// chosen large; tests validate against dense Expm on small matrices.
double EstimateExpmTraceMinusDim(const CsrMatrix& s,
                                 const HutchinsonOptions& opts = {});

}  // namespace least
