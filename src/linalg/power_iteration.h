/// \file power_iteration.h
/// \brief Spectral radius estimation for non-negative matrices.
///
/// Used (a) as the reference value when *testing* Lemma 1 (the LEAST bound
/// must dominate the true spectral radius) and (b) as the NO-BEARS-style
/// baseline constraint [18] that the paper compares its approach against.

#pragma once

#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"
#include "linalg/workspace.h"

namespace least {

/// \brief Options for `SpectralRadius`.
struct PowerIterationOptions {
  int max_iters = 200;   ///< iteration cap
  double tol = 1e-10;    ///< relative change stopping tolerance
  uint64_t seed = 7;     ///< start-vector seed
};

/// Estimates the spectral radius of a non-negative square dense matrix by
/// power iteration on a strictly positive start vector. For non-negative
/// matrices the dominant eigenvalue equals the spectral radius
/// (Perron–Frobenius), so convergence is monotone in practice; nilpotent
/// (DAG-patterned) matrices drive the iterate to zero and return 0.
/// Iterate vectors come from `ws` when given (allocation-free steady state).
double SpectralRadius(const DenseMatrix& a,
                      const PowerIterationOptions& opts = {},
                      Workspace* ws = nullptr);

/// Sparse overload.
double SpectralRadius(const CsrMatrix& a,
                      const PowerIterationOptions& opts = {},
                      Workspace* ws = nullptr);

}  // namespace least
