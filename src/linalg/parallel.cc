#include "linalg/parallel.h"

#include <atomic>

namespace least {

namespace {
std::atomic<ParallelExecutor*> g_executor{nullptr};
}  // namespace

void SetParallelExecutor(ParallelExecutor* executor) {
  g_executor.store(executor, std::memory_order_release);
}

ParallelExecutor* GetParallelExecutor() {
  return g_executor.load(std::memory_order_acquire);
}

namespace {

void GatedParallelFor(int64_t work, int64_t min_work, int64_t begin,
                      int64_t end, int64_t grain,
                      const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  ParallelExecutor* executor = GetParallelExecutor();
  if (executor == nullptr || executor->concurrency() <= 1 ||
      work < min_work || end - begin < 2) {
    fn(begin, end);
    return;
  }
  executor->ParallelFor(begin, end, grain, fn);
}

}  // namespace

void MaybeParallelFor(int64_t begin, int64_t end, int64_t grain,
                      const std::function<void(int64_t, int64_t)>& fn) {
  GatedParallelFor(end - begin, kParallelMinWork, begin, end, grain, fn);
}

void MaybeParallelForFlops(int64_t flops, int64_t begin, int64_t end,
                           int64_t grain,
                           const std::function<void(int64_t, int64_t)>& fn) {
  GatedParallelFor(flops, kParallelMinFlops, begin, end, grain, fn);
}

}  // namespace least
