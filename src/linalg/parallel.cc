#include "linalg/parallel.h"

#include <atomic>

namespace least {

namespace {
std::atomic<ParallelExecutor*> g_executor{nullptr};
}  // namespace

void SetParallelExecutor(ParallelExecutor* executor) {
  g_executor.store(executor, std::memory_order_release);
}

ParallelExecutor* GetParallelExecutor() {
  return g_executor.load(std::memory_order_acquire);
}

namespace parallel_detail {

bool ShouldParallelize(int64_t work, int64_t min_work, int64_t span) {
  if (work < min_work || span < 2) return false;
  ParallelExecutor* executor = GetParallelExecutor();
  return executor != nullptr && executor->concurrency() > 1;
}

void Dispatch(int64_t begin, int64_t end, int64_t grain,
              const std::function<void(int64_t, int64_t)>& fn) {
  ParallelExecutor* executor = GetParallelExecutor();
  if (executor == nullptr) {  // raced with uninstall: run serially
    fn(begin, end);
    return;
  }
  executor->ParallelFor(begin, end, grain, fn);
}

}  // namespace parallel_detail

}  // namespace least
