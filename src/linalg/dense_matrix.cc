#include "linalg/dense_matrix.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "linalg/parallel.h"

namespace least {

DenseMatrix::DenseMatrix(int rows, int cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  LEAST_CHECK(data_.size() == static_cast<size_t>(rows) * cols);
}

DenseMatrix DenseMatrix::Identity(int d) {
  DenseMatrix m(d, d);
  for (int i = 0; i < d; ++i) m(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::RandomUniform(int rows, int cols, double lo,
                                       double hi, Rng& rng) {
  DenseMatrix m(rows, cols);
  for (double& v : m.data_) v = rng.Uniform(lo, hi);
  return m;
}

void DenseMatrix::Reshape(int rows, int cols) {
  LEAST_CHECK(rows >= 0 && cols >= 0);
  rows_ = rows;
  cols_ = cols;
  data_.resize(static_cast<size_t>(rows) * cols);
}

void DenseMatrix::CopyFrom(const DenseMatrix& other) {
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = other.data_;  // vector assignment reuses capacity when sufficient
}

void DenseMatrix::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void DenseMatrix::FillDiagonal(double v) {
  LEAST_CHECK(rows_ == cols_);
  for (int i = 0; i < rows_; ++i) (*this)(i, i) = v;
}

void DenseMatrix::AddScaled(const DenseMatrix& other, double alpha) {
  LEAST_CHECK(SameShape(other));
  double* dst = data_.data();
  const double* src = other.data_.data();
  // Pure elementwise partition; grain-guarded so small matrices stay serial.
  MaybeParallelFor(0, static_cast<int64_t>(data_.size()), /*grain=*/-1,
                   [dst, src, alpha](int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) {
                       dst[i] += alpha * src[i];
                     }
                   });
}

void DenseMatrix::Scale(double alpha) {
  for (double& v : data_) v *= alpha;
}

DenseMatrix DenseMatrix::Hadamard(const DenseMatrix& other) const {
  DenseMatrix out;
  HadamardInto(other, &out);
  return out;
}

void DenseMatrix::HadamardInto(const DenseMatrix& other,
                               DenseMatrix* out) const {
  LEAST_CHECK(SameShape(other));
  LEAST_CHECK(out != this && out != &other);
  out->Reshape(rows_, cols_);
  const double* a = data_.data();
  const double* b = other.data_.data();
  double* dst = out->data_.data();
  MaybeParallelFor(0, static_cast<int64_t>(data_.size()), /*grain=*/-1,
                   [a, b, dst](int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) dst[i] = a[i] * b[i];
                   });
}

DenseMatrix DenseMatrix::HadamardSquare() const {
  DenseMatrix out;
  HadamardSquareInto(&out);
  return out;
}

void DenseMatrix::HadamardSquareInto(DenseMatrix* out) const {
  LEAST_CHECK(out != this);
  out->Reshape(rows_, cols_);
  const double* a = data_.data();
  double* dst = out->data_.data();
  MaybeParallelFor(0, static_cast<int64_t>(data_.size()), /*grain=*/-1,
                   [a, dst](int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) dst[i] = a[i] * a[i];
                   });
}

DenseMatrix DenseMatrix::Transpose() const {
  DenseMatrix out;
  TransposeInto(&out);
  return out;
}

void DenseMatrix::TransposeInto(DenseMatrix* out) const {
  LEAST_CHECK(out != this);
  out->Reshape(cols_, rows_);
  for (int i = 0; i < rows_; ++i) {
    const double* src = row(i);
    for (int j = 0; j < cols_; ++j) (*out)(j, i) = src[j];
  }
}

double DenseMatrix::Trace() const {
  LEAST_CHECK(rows_ == cols_);
  double t = 0.0;
  for (int i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

double DenseMatrix::FrobeniusNorm() const {
  return std::sqrt(DeterministicSumSquares(data_.data(),
                                           static_cast<int64_t>(data_.size())));
}

double DenseMatrix::MaxAbs() const {
  const double* p = data_.data();
  return DeterministicMax(
      0, static_cast<int64_t>(data_.size()), 0.0, [p](int64_t lo, int64_t hi) {
        double m = 0.0;
        for (int64_t i = lo; i < hi; ++i) m = std::max(m, std::fabs(p[i]));
        return m;
      });
}

double DenseMatrix::OneNorm() const {
  // Row-streaming pass over column blocks: each block's |column| sums live in
  // a small stack buffer while whole rows stream through the cache, instead
  // of the cache-hostile one-column-at-a-time walk (stride = row length).
  // Per-column accumulation order (i increasing) is unchanged, so the result
  // is bitwise identical to the naive traversal.
  constexpr int kColChunk = 128;
  double sums[kColChunk];
  double best = 0.0;
  for (int j0 = 0; j0 < cols_; j0 += kColChunk) {
    const int jw = std::min(kColChunk, cols_ - j0);
    std::fill(sums, sums + jw, 0.0);
    for (int i = 0; i < rows_; ++i) {
      const double* p = row(i) + j0;
      for (int j = 0; j < jw; ++j) sums[j] += std::fabs(p[j]);
    }
    for (int j = 0; j < jw; ++j) best = std::max(best, sums[j]);
  }
  return best;
}

double DenseMatrix::Sum() const {
  const double* p = data_.data();
  return DeterministicSum(0, static_cast<int64_t>(data_.size()),
                          [p](int64_t lo, int64_t hi) {
                            double s = 0.0;
                            for (int64_t i = lo; i < hi; ++i) s += p[i];
                            return s;
                          });
}

long long DenseMatrix::CountNonZeros(double tol) const {
  long long n = 0;
  for (double v : data_) {
    if (std::fabs(v) > tol) ++n;
  }
  return n;
}

void DenseMatrix::ApplyThreshold(double threshold) {
  if (threshold <= 0.0) return;
  double* p = data_.data();
  MaybeParallelFor(0, static_cast<int64_t>(data_.size()), /*grain=*/-1,
                   [p, threshold](int64_t lo, int64_t hi) {
                     for (int64_t i = lo; i < hi; ++i) {
                       if (std::fabs(p[i]) < threshold) p[i] = 0.0;
                     }
                   });
}

std::vector<double> DenseMatrix::RowSums() const {
  std::vector<double> r(rows_);
  RowSumsInto(r);
  return r;
}

void DenseMatrix::RowSumsInto(std::span<double> out) const {
  LEAST_CHECK(static_cast<int>(out.size()) == rows_);
  for (int i = 0; i < rows_; ++i) {
    const double* p = row(i);
    double s = 0.0;
    for (int j = 0; j < cols_; ++j) s += p[j];
    out[i] = s;
  }
}

std::vector<double> DenseMatrix::ColSums() const {
  std::vector<double> c(cols_);
  ColSumsInto(c);
  return c;
}

void DenseMatrix::ColSumsInto(std::span<double> out) const {
  LEAST_CHECK(static_cast<int>(out.size()) == cols_);
  std::fill(out.begin(), out.end(), 0.0);
  for (int i = 0; i < rows_; ++i) {
    const double* p = row(i);
    for (int j = 0; j < cols_; ++j) out[j] += p[j];
  }
}

// ---------------------------------------------------------------------------
// Gemm.
// ---------------------------------------------------------------------------

namespace {

// Default packed-panel shape: kc * jc doubles = 256 KiB, sized to sit in L2
// while each packed micro-panel strip (kc x 8 = 16 KiB) streams through L1.
// Swept by bench/kernel_micro; any shape gives bitwise-identical results.
constexpr int kDefaultGemmKc = 256;
constexpr int kDefaultGemmJc = 128;

// Register tile: kGemmMr output rows x kGemmNr output columns accumulate in
// registers across a whole k-block — B is the only per-multiply memory
// operand, read once per kGemmMr rows. Fixed trip counts let the compiler
// unroll and vectorize the tile.
constexpr int kGemmNr = 8;
constexpr int kGemmMr = 4;

std::atomic<int> g_gemm_kc{kDefaultGemmKc};
std::atomic<int> g_gemm_jc{kDefaultGemmJc};

// Packed B panel, one per thread: calls from concurrent Fits (the fleet
// runtime) never share it, and it grows to the blocking's high-water size
// once, keeping steady-state gemm allocation-free.
thread_local std::vector<double> t_gemm_panel;

// ---- Micro-kernels -------------------------------------------------------
//
// The panel stores B in strip-major layout: strip s holds columns
// [8s, 8s + 8) of the k-block, p-contiguous (`panel[(s * pw + p) * 8 + r]`),
// so every tile walks memory with unit stride. `first` selects whether the
// accumulators start from zero (first k-block) or from the stored partials —
// continuing the fixed increasing-k accumulation order per output element.
//
// Each kernel exists in two clones: the portable baseline, and an AVX2 copy
// picked once at startup via `__builtin_cpu_supports`. The AVX2 target does
// NOT enable the FMA ISA, so the compiler cannot contract the mul + add
// pairs — both clones, at any vector width, round every operation exactly
// like the scalar reference kernel. Lane-parallelism across columns/rows
// never reorders any single element's accumulation, which is what keeps
// `MatmulInto` bitwise equal to `MatmulReferenceInto` everywhere.

// GCC warns that returning a 32-byte vector from a function compiled
// without AVX would change the ABI across translation units; every helper
// here is always_inline within this file, so no such call boundary exists.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

// Explicit 4-lane vectors (GCC/Clang vector extensions) pin the
// vectorization shape: lanes run across output *columns*, multiplies and
// adds stay separate instructions, and the compiler never gets the chance
// to "helpfully" restructure the reduction across p (which -O3
// auto-vectorization does with a storm of shuffles). On targets without
// 256-bit units each vector lowers to two 128-bit halves — same math,
// same rounding.
typedef double v4df __attribute__((vector_size(32), aligned(8)));

__attribute__((always_inline)) inline v4df LoadV4(const double* p) {
  v4df v;
  __builtin_memcpy(&v, p, sizeof(v));
  return v;
}

__attribute__((always_inline)) inline void StoreV4(double* p, v4df v) {
  __builtin_memcpy(p, &v, sizeof(v));
}

// 4 rows x 8 columns against one full-width strip.
__attribute__((always_inline)) inline void Tile4x8Impl(
    const double* a0, const double* a1, const double* a2, const double* a3,
    const double* strip, int pw, double* o0, double* o1, double* o2,
    double* o3, bool first) {
  v4df acc0l, acc0h, acc1l, acc1h, acc2l, acc2h, acc3l, acc3h;
  if (first) {
    acc0l = acc0h = acc1l = acc1h = v4df{0.0, 0.0, 0.0, 0.0};
    acc2l = acc2h = acc3l = acc3h = v4df{0.0, 0.0, 0.0, 0.0};
  } else {
    acc0l = LoadV4(o0);
    acc0h = LoadV4(o0 + 4);
    acc1l = LoadV4(o1);
    acc1h = LoadV4(o1 + 4);
    acc2l = LoadV4(o2);
    acc2h = LoadV4(o2 + 4);
    acc3l = LoadV4(o3);
    acc3h = LoadV4(o3 + 4);
  }
  const double* bp = strip;
  for (int p = 0; p < pw; ++p, bp += kGemmNr) {
    const v4df bl = LoadV4(bp);
    const v4df bh = LoadV4(bp + 4);
    const v4df av0 = v4df{a0[p], a0[p], a0[p], a0[p]};
    const v4df av1 = v4df{a1[p], a1[p], a1[p], a1[p]};
    const v4df av2 = v4df{a2[p], a2[p], a2[p], a2[p]};
    const v4df av3 = v4df{a3[p], a3[p], a3[p], a3[p]};
    acc0l += av0 * bl;
    acc0h += av0 * bh;
    acc1l += av1 * bl;
    acc1h += av1 * bh;
    acc2l += av2 * bl;
    acc2h += av2 * bh;
    acc3l += av3 * bl;
    acc3h += av3 * bh;
  }
  StoreV4(o0, acc0l);
  StoreV4(o0 + 4, acc0h);
  StoreV4(o1, acc1l);
  StoreV4(o1 + 4, acc1h);
  StoreV4(o2, acc2l);
  StoreV4(o2 + 4, acc2h);
  StoreV4(o3, acc3l);
  StoreV4(o3 + 4, acc3h);
}

// 1 row x 8 columns (row remainder).
__attribute__((always_inline)) inline void Tile1x8Impl(const double* a0,
                                                       const double* strip,
                                                       int pw, double* o0,
                                                       bool first) {
  v4df accl, acch;
  if (first) {
    accl = acch = v4df{0.0, 0.0, 0.0, 0.0};
  } else {
    accl = LoadV4(o0);
    acch = LoadV4(o0 + 4);
  }
  const double* bp = strip;
  for (int p = 0; p < pw; ++p, bp += kGemmNr) {
    const v4df av = v4df{a0[p], a0[p], a0[p], a0[p]};
    accl += av * LoadV4(bp);
    acch += av * LoadV4(bp + 4);
  }
  StoreV4(o0, accl);
  StoreV4(o0 + 4, acch);
}

using Tile4x8Fn = void (*)(const double*, const double*, const double*,
                           const double*, const double*, int, double*,
                           double*, double*, double*, bool);
using Tile1x8Fn = void (*)(const double*, const double*, int, double*, bool);

void Tile4x8Base(const double* a0, const double* a1, const double* a2,
                 const double* a3, const double* strip, int pw, double* o0,
                 double* o1, double* o2, double* o3, bool first) {
  Tile4x8Impl(a0, a1, a2, a3, strip, pw, o0, o1, o2, o3, first);
}

void Tile1x8Base(const double* a0, const double* strip, int pw, double* o0,
                 bool first) {
  Tile1x8Impl(a0, strip, pw, o0, first);
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2"))) void Tile4x8Avx2(
    const double* a0, const double* a1, const double* a2, const double* a3,
    const double* strip, int pw, double* o0, double* o1, double* o2,
    double* o3, bool first) {
  Tile4x8Impl(a0, a1, a2, a3, strip, pw, o0, o1, o2, o3, first);
}

__attribute__((target("avx2"))) void Tile1x8Avx2(const double* a0,
                                                 const double* strip, int pw,
                                                 double* o0, bool first) {
  Tile1x8Impl(a0, strip, pw, o0, first);
}
#endif

Tile4x8Fn ResolveTile4x8() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return Tile4x8Avx2;
#endif
  return Tile4x8Base;
}

Tile1x8Fn ResolveTile1x8() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return Tile1x8Avx2;
#endif
  return Tile1x8Base;
}

const Tile4x8Fn g_tile4x8 = ResolveTile4x8();
const Tile1x8Fn g_tile1x8 = ResolveTile1x8();

#pragma GCC diagnostic pop

// Column-remainder tile (last strip when jw % 8 != 0): scalar over the
// `cols` real columns of a zero-padded strip, any row count.
void TileTail(const double* const* a_rows, int mr, const double* strip,
              int pw, double* const* out_rows, int cols, bool first) {
  for (int m = 0; m < mr; ++m) {
    const double* a_row = a_rows[m];
    double* out_row = out_rows[m];
    for (int c = 0; c < cols; ++c) {
      double acc = first ? 0.0 : out_row[c];
      const double* bp = strip + c;
      for (int p = 0; p < pw; ++p, bp += kGemmNr) acc += a_row[p] * *bp;
      out_row[c] = acc;
    }
  }
}

}  // namespace

void SetGemmBlocking(int kc, int jc) {
  g_gemm_kc.store(kc >= 1 ? kc : kDefaultGemmKc, std::memory_order_relaxed);
  g_gemm_jc.store(jc >= 1 ? jc : kDefaultGemmJc, std::memory_order_relaxed);
}

GemmBlocking GetGemmBlocking() {
  return {g_gemm_kc.load(std::memory_order_relaxed),
          g_gemm_jc.load(std::memory_order_relaxed)};
}

void MatmulInto(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* out) {
  LEAST_CHECK(a.cols() == b.rows());
  LEAST_CHECK(out != nullptr);
  LEAST_CHECK(out->rows() == a.rows() && out->cols() == b.cols());
  LEAST_CHECK(out != &a && out != &b);
  const int n = a.rows(), k = a.cols(), m = b.cols();
  if (n == 0 || m == 0) return;
  if (k == 0) {
    out->Fill(0.0);
    return;
  }
  const GemmBlocking blk = GetGemmBlocking();
  const int kc = blk.kc, jc = blk.jc;
  const int max_strips = (jc + kGemmNr - 1) / kGemmNr;
  std::vector<double>& panel = t_gemm_panel;
  const size_t panel_elems =
      static_cast<size_t>(max_strips) * kc * kGemmNr;
  if (panel.size() < panel_elems) panel.resize(panel_elems);
  for (int j0 = 0; j0 < m; j0 += jc) {
    const int jw = std::min(jc, m - j0);
    const int strips = (jw + kGemmNr - 1) / kGemmNr;
    for (int p0 = 0; p0 < k; p0 += kc) {
      const int pw = std::min(kc, k - p0);
      // Pack the k-block of B into strip-major micro-panels: strip s holds
      // columns [8s, 8s + 8) p-contiguously (zero-padded on the ragged
      // edge), so the micro-kernels stream it with unit stride.
      for (int s = 0; s < strips; ++s) {
        const int c0 = s * kGemmNr;
        const int cols = std::min(kGemmNr, jw - c0);
        double* dst = panel.data() + static_cast<size_t>(s) * pw * kGemmNr;
        for (int p = 0; p < pw; ++p, dst += kGemmNr) {
          const double* src = b.row(p0 + p) + j0 + c0;
          for (int c = 0; c < cols; ++c) dst[c] = src[c];
          for (int c = cols; c < kGemmNr; ++c) dst[c] = 0.0;
        }
      }
      const double* panel_ptr = panel.data();
      const bool first = p0 == 0;
      // Rows are a pure output partition: each out(i, j) is written by
      // exactly one chunk, accumulating k-terms in the same order as the
      // serial loop — bitwise identical at any thread count (the 4-row
      // grouping below never mixes state between rows, so chunk boundaries
      // cannot change any element's value).
      const int64_t flops = 2LL * n * pw * jw;
      MaybeParallelForFlops(
          flops, 0, n, /*grain=*/-1,
          [&, panel_ptr, first, pw, jw, strips, j0, p0](int64_t i0,
                                                        int64_t i1) {
            int64_t i = i0;
            for (; i + kGemmMr <= i1; i += kGemmMr) {
              const int ii = static_cast<int>(i);
              const double* a0 = a.row(ii) + p0;
              const double* a1 = a.row(ii + 1) + p0;
              const double* a2 = a.row(ii + 2) + p0;
              const double* a3 = a.row(ii + 3) + p0;
              double* o0 = out->row(ii) + j0;
              double* o1 = out->row(ii + 1) + j0;
              double* o2 = out->row(ii + 2) + j0;
              double* o3 = out->row(ii + 3) + j0;
              for (int s = 0; s < strips; ++s) {
                const int c0 = s * kGemmNr;
                const double* strip =
                    panel_ptr + static_cast<size_t>(s) * pw * kGemmNr;
                if (jw - c0 >= kGemmNr) {
                  g_tile4x8(a0, a1, a2, a3, strip, pw, o0 + c0, o1 + c0,
                            o2 + c0, o3 + c0, first);
                } else {
                  const double* a_rows[kGemmMr] = {a0, a1, a2, a3};
                  double* out_rows[kGemmMr] = {o0 + c0, o1 + c0, o2 + c0,
                                               o3 + c0};
                  TileTail(a_rows, kGemmMr, strip, pw, out_rows, jw - c0,
                           first);
                }
              }
            }
            for (; i < i1; ++i) {
              const int ii = static_cast<int>(i);
              const double* a0 = a.row(ii) + p0;
              double* o0 = out->row(ii) + j0;
              for (int s = 0; s < strips; ++s) {
                const int c0 = s * kGemmNr;
                const double* strip =
                    panel_ptr + static_cast<size_t>(s) * pw * kGemmNr;
                if (jw - c0 >= kGemmNr) {
                  g_tile1x8(a0, strip, pw, o0 + c0, first);
                } else {
                  const double* a_rows[1] = {a0};
                  double* out_rows[1] = {o0 + c0};
                  TileTail(a_rows, 1, strip, pw, out_rows, jw - c0, first);
                }
              }
            }
          });
    }
  }
}

void MatmulReferenceInto(const DenseMatrix& a, const DenseMatrix& b,
                         DenseMatrix* out) {
  LEAST_CHECK(a.cols() == b.rows());
  LEAST_CHECK(out != nullptr);
  LEAST_CHECK(out->rows() == a.rows() && out->cols() == b.cols());
  LEAST_CHECK(out != &a && out != &b);
  const int n = a.rows(), k = a.cols(), m = b.cols();
  for (int i = 0; i < n; ++i) {
    double* out_row = out->row(i);
    const double* a_row = a.row(i);
    for (int j = 0; j < m; ++j) out_row[j] = 0.0;
    for (int p = 0; p < k; ++p) {
      const double av = a_row[p];
      const double* b_row = b.row(p);
      for (int j = 0; j < m; ++j) out_row[j] += av * b_row[j];
    }
  }
}

DenseMatrix Matmul(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix out(a.rows(), b.cols());
  MatmulInto(a, b, &out);
  return out;
}

DenseMatrix Add(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix out = a;
  out.AddScaled(b, 1.0);
  return out;
}

DenseMatrix Subtract(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix out = a;
  out.AddScaled(b, -1.0);
  return out;
}

double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b) {
  LEAST_CHECK(a.SameShape(b));
  double m = 0.0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  }
  return m;
}

void MatvecInto(const DenseMatrix& a, std::span<const double> x,
                std::span<double> y) {
  LEAST_CHECK(static_cast<int>(x.size()) == a.cols());
  LEAST_CHECK(static_cast<int>(y.size()) == a.rows());
  const int cols = a.cols();
  // Pure output partition over rows, same per-row dot order as the serial
  // loop — the power-iteration constraint gets the pool for free.
  const int64_t flops = 2LL * a.rows() * cols;
  MaybeParallelForFlops(flops, 0, a.rows(), /*grain=*/-1,
                        [&](int64_t i0, int64_t i1) {
                          for (int64_t i = i0; i < i1; ++i) {
                            const double* p = a.row(static_cast<int>(i));
                            double s = 0.0;
                            for (int j = 0; j < cols; ++j) s += p[j] * x[j];
                            y[i] = s;
                          }
                        });
}

}  // namespace least
