#include "linalg/dense_matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "linalg/parallel.h"

namespace least {

DenseMatrix::DenseMatrix(int rows, int cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  LEAST_CHECK(data_.size() == static_cast<size_t>(rows) * cols);
}

DenseMatrix DenseMatrix::Identity(int d) {
  DenseMatrix m(d, d);
  for (int i = 0; i < d; ++i) m(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::RandomUniform(int rows, int cols, double lo,
                                       double hi, Rng& rng) {
  DenseMatrix m(rows, cols);
  for (double& v : m.data_) v = rng.Uniform(lo, hi);
  return m;
}

void DenseMatrix::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void DenseMatrix::FillDiagonal(double v) {
  LEAST_CHECK(rows_ == cols_);
  for (int i = 0; i < rows_; ++i) (*this)(i, i) = v;
}

void DenseMatrix::AddScaled(const DenseMatrix& other, double alpha) {
  LEAST_CHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void DenseMatrix::Scale(double alpha) {
  for (double& v : data_) v *= alpha;
}

DenseMatrix DenseMatrix::Hadamard(const DenseMatrix& other) const {
  LEAST_CHECK(SameShape(other));
  DenseMatrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] * other.data_[i];
  }
  return out;
}

DenseMatrix DenseMatrix::HadamardSquare() const {
  DenseMatrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] * data_[i];
  }
  return out;
}

DenseMatrix DenseMatrix::Transpose() const {
  DenseMatrix out(cols_, rows_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

double DenseMatrix::Trace() const {
  LEAST_CHECK(rows_ == cols_);
  double t = 0.0;
  for (int i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

double DenseMatrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double DenseMatrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double DenseMatrix::OneNorm() const {
  double best = 0.0;
  for (int j = 0; j < cols_; ++j) {
    double s = 0.0;
    for (int i = 0; i < rows_; ++i) s += std::fabs((*this)(i, j));
    best = std::max(best, s);
  }
  return best;
}

double DenseMatrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

long long DenseMatrix::CountNonZeros(double tol) const {
  long long n = 0;
  for (double v : data_) {
    if (std::fabs(v) > tol) ++n;
  }
  return n;
}

void DenseMatrix::ApplyThreshold(double threshold) {
  if (threshold <= 0.0) return;
  for (double& v : data_) {
    if (std::fabs(v) < threshold) v = 0.0;
  }
}

std::vector<double> DenseMatrix::RowSums() const {
  std::vector<double> r(rows_, 0.0);
  for (int i = 0; i < rows_; ++i) {
    const double* p = row(i);
    double s = 0.0;
    for (int j = 0; j < cols_; ++j) s += p[j];
    r[i] = s;
  }
  return r;
}

std::vector<double> DenseMatrix::ColSums() const {
  std::vector<double> c(cols_, 0.0);
  for (int i = 0; i < rows_; ++i) {
    const double* p = row(i);
    for (int j = 0; j < cols_; ++j) c[j] += p[j];
  }
  return c;
}

void MatmulInto(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* out) {
  LEAST_CHECK(a.cols() == b.rows());
  LEAST_CHECK(out != nullptr);
  LEAST_CHECK(out->rows() == a.rows() && out->cols() == b.cols());
  LEAST_CHECK(out != &a && out != &b);
  const int n = a.rows(), k = a.cols(), m = b.cols();
  // ikj ordering: streams over contiguous rows of b and out. Each output
  // row is produced by exactly one chunk with serial-identical operation
  // order, so the parallel split is bitwise-deterministic (see
  // linalg/parallel.h).
  auto rows_kernel = [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      double* out_row = out->row(static_cast<int>(i));
      const double* a_row = a.row(static_cast<int>(i));
      for (int j = 0; j < m; ++j) out_row[j] = 0.0;
      for (int p = 0; p < k; ++p) {
        const double av = a_row[p];
        if (av == 0.0) continue;
        const double* b_row = b.row(p);
        for (int j = 0; j < m; ++j) out_row[j] += av * b_row[j];
      }
    }
  };
  const int64_t flops = static_cast<int64_t>(n) * k * m;
  MaybeParallelForFlops(flops, 0, n, /*grain=*/-1, rows_kernel);
}

DenseMatrix Matmul(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix out(a.rows(), b.cols());
  MatmulInto(a, b, &out);
  return out;
}

DenseMatrix Add(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix out = a;
  out.AddScaled(b, 1.0);
  return out;
}

DenseMatrix Subtract(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix out = a;
  out.AddScaled(b, -1.0);
  return out;
}

double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b) {
  LEAST_CHECK(a.SameShape(b));
  double m = 0.0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  }
  return m;
}

void MatvecInto(const DenseMatrix& a, std::span<const double> x,
                std::span<double> y) {
  LEAST_CHECK(static_cast<int>(x.size()) == a.cols());
  LEAST_CHECK(static_cast<int>(y.size()) == a.rows());
  for (int i = 0; i < a.rows(); ++i) {
    const double* p = a.row(i);
    double s = 0.0;
    for (int j = 0; j < a.cols(); ++j) s += p[j] * x[j];
    y[i] = s;
  }
}

}  // namespace least
