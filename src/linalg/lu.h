/// \file lu.h
/// \brief Dense LU factorization with partial pivoting.
///
/// Substrate for the Padé rational approximation inside `Expm` (the NOTEARS
/// baseline needs to solve (D - N) X = (D + N) style systems). The in-place
/// entry points (`LuFactorInPlace` / `LuSolveInPlace`) exist for the
/// workspace-backed hot path: they factor and solve entirely in caller
/// storage, so a steady-state `Expm` performs no heap allocation.

#pragma once

#include "linalg/dense_matrix.h"
#include "util/status.h"

namespace least {

/// Factors the square matrix in `a` in place (PA = LU; `a` is overwritten
/// with packed L — unit diagonal, below — and U — on/above). `perm` is
/// resized to the dimension and filled with the row permutation. Fails with
/// `kInvalidArgument` for non-square input and `kInternal` when a zero pivot
/// makes the matrix numerically singular.
Status LuFactorInPlace(DenseMatrix* a, std::vector<int>* perm);

/// Solves A X = B in place given a packed LU and its permutation: `b` is
/// overwritten with X, one column at a time. `scratch` must have length
/// >= dim. Allocation-free.
void LuSolveInPlace(const DenseMatrix& lu, const std::vector<int>& perm,
                    DenseMatrix* b, std::span<double> scratch);

/// \brief LU factorization (PA = LU) of a square matrix (owning wrapper
/// around the in-place kernels).
class LuFactorization {
 public:
  /// Factors `a`. Fails with `kInvalidArgument` for non-square input and
  /// `kInternal` when a zero pivot makes the matrix numerically singular.
  static Result<LuFactorization> Factor(const DenseMatrix& a);

  /// Solves A X = B for X (B has matching row count). Returns X.
  DenseMatrix Solve(const DenseMatrix& b) const;

  /// Solves A x = b for a single right-hand side.
  std::vector<double> Solve(std::span<const double> b) const;

  int dim() const { return lu_.rows(); }

 private:
  LuFactorization(DenseMatrix lu, std::vector<int> perm)
      : lu_(std::move(lu)), perm_(std::move(perm)) {}

  DenseMatrix lu_;         // packed L (unit diag, below) and U (on/above)
  std::vector<int> perm_;  // row permutation: solve uses b[perm_[i]]
};

}  // namespace least
