/// \file expm.h
/// \brief Dense matrix exponential.
///
/// The NOTEARS acyclicity constraint (Eq. 2 of the paper) is
/// `h(W) = Tr(e^{W∘W}) − d`, whose gradient needs the full matrix
/// exponential. This file implements Higham's (2005) scaling-and-squaring
/// algorithm with Padé approximants of order 3/5/7/9/13 — the same method
/// behind `scipy.linalg.expm`, which the paper's reference NOTEARS
/// implementation uses. Cost is O(d^3) time and O(d^2) space, which is
/// exactly the bottleneck LEAST removes.

#pragma once

#include "linalg/dense_matrix.h"

namespace least {

/// Computes e^A for a square matrix.
DenseMatrix Expm(const DenseMatrix& a);

/// Reference Taylor-series exponential (for testing Expm on small inputs).
/// Sums terms until the increment falls below `tol` or `max_terms` is hit.
DenseMatrix ExpmTaylor(const DenseMatrix& a, double tol = 1e-16,
                       int max_terms = 200);

}  // namespace least
