/// \file expm.h
/// \brief Dense matrix exponential.
///
/// The NOTEARS acyclicity constraint (Eq. 2 of the paper) is
/// `h(W) = Tr(e^{W∘W}) − d`, whose gradient needs the full matrix
/// exponential. This file implements Higham's (2005) scaling-and-squaring
/// algorithm with Padé approximants of order 3/5/7/9/13 — the same method
/// behind `scipy.linalg.expm`, which the paper's reference NOTEARS
/// implementation uses. Cost is O(d^3) time and O(d^2) space, which is
/// exactly the bottleneck LEAST removes.
///
/// `ExpmInto` is the hot-path form: every temporary (even powers, Padé
/// numerator/denominator, LU pivots, squaring buffers) comes from the
/// caller's `Workspace`, so a steady-state NOTEARS iteration performs zero
/// heap allocations.

#pragma once

#include "linalg/dense_matrix.h"
#include "linalg/workspace.h"

namespace least {

/// Computes e^A into `out` (reshaped to A's shape). All scratch comes from
/// `ws`; with `ws == nullptr` a call-local workspace is used (allocating).
/// `out` must not be a live checkout drawn from `ws` after this call opens
/// its scope — pass a caller-owned matrix or an earlier checkout.
void ExpmInto(const DenseMatrix& a, DenseMatrix* out, Workspace* ws);

/// Computes e^A for a square matrix (allocating convenience wrapper).
DenseMatrix Expm(const DenseMatrix& a);

/// Reference Taylor-series exponential (for testing Expm on small inputs).
/// Sums terms until the increment falls below `tol` or `max_terms` is hit.
DenseMatrix ExpmTaylor(const DenseMatrix& a, double tol = 1e-16,
                       int max_terms = 200);

}  // namespace least
