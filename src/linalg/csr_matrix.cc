#include "linalg/csr_matrix.h"

#include <algorithm>
#include <cmath>

namespace least {

CsrMatrix CsrMatrix::FromTriplets(int rows, int cols,
                                  std::vector<Triplet> triplets) {
  CsrMatrix m(rows, cols);
  for (const Triplet& t : triplets) {
    LEAST_CHECK(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  int last_row = -1;
  int last_col = -1;
  for (const Triplet& t : triplets) {
    if (t.row == last_row && t.col == last_col) {
      // Coalesce duplicate coordinate.
      m.values_.back() += t.value;
      continue;
    }
    m.col_idx_.push_back(t.col);
    m.values_.push_back(t.value);
    m.row_ptr_[t.row + 1] = static_cast<int64_t>(m.col_idx_.size());
    last_row = t.row;
    last_col = t.col;
  }
  // Forward-fill row_ptr so that empty rows copy the previous offset.
  for (int r = 1; r <= rows; ++r) {
    m.row_ptr_[r] = std::max(m.row_ptr_[r], m.row_ptr_[r - 1]);
  }
  return m;
}

CsrMatrix CsrMatrix::FromDense(const DenseMatrix& dense, double tol) {
  CsrMatrix m(dense.rows(), dense.cols());
  for (int i = 0; i < dense.rows(); ++i) {
    for (int j = 0; j < dense.cols(); ++j) {
      const double v = dense(i, j);
      if (std::fabs(v) > tol) {
        m.col_idx_.push_back(j);
        m.values_.push_back(v);
      }
    }
    m.row_ptr_[i + 1] = static_cast<int64_t>(m.col_idx_.size());
  }
  return m;
}

DenseMatrix CsrMatrix::ToDense() const {
  DenseMatrix out(rows_, cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int64_t e = row_ptr_[i]; e < row_ptr_[i + 1]; ++e) {
      out(i, col_idx_[e]) += values_[e];
    }
  }
  return out;
}

double CsrMatrix::At(int i, int j) const {
  LEAST_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
  const int64_t lo = row_ptr_[i], hi = row_ptr_[i + 1];
  auto begin = col_idx_.begin() + lo;
  auto end = col_idx_.begin() + hi;
  auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return values_[lo + (it - begin)];
}

int CsrMatrix::EntryRow(int64_t e) const {
  LEAST_DCHECK(e >= 0 && e < nnz());
  // First row whose end offset exceeds e.
  auto it = std::upper_bound(row_ptr_.begin(), row_ptr_.end(), e);
  return static_cast<int>(it - row_ptr_.begin()) - 1;
}

std::vector<double> CsrMatrix::RowSums() const {
  std::vector<double> r(rows_, 0.0);
  for (int i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (int64_t e = row_ptr_[i]; e < row_ptr_[i + 1]; ++e) s += values_[e];
    r[i] = s;
  }
  return r;
}

std::vector<double> CsrMatrix::ColSums() const {
  std::vector<double> c(cols_, 0.0);
  for (int64_t e = 0; e < nnz(); ++e) c[col_idx_[e]] += values_[e];
  return c;
}

double CsrMatrix::L1Norm() const {
  double s = 0.0;
  for (double v : values_) s += std::fabs(v);
  return s;
}

double CsrMatrix::MaxAbs() const {
  double m = 0.0;
  for (double v : values_) m = std::max(m, std::fabs(v));
  return m;
}

int64_t CsrMatrix::CountNonZeros(double tol) const {
  int64_t n = 0;
  for (double v : values_) {
    if (std::fabs(v) > tol) ++n;
  }
  return n;
}

int64_t CsrMatrix::ThresholdValues(double threshold) {
  if (threshold <= 0.0) return 0;
  int64_t zeroed = 0;
  for (double& v : values_) {
    if (v != 0.0 && std::fabs(v) < threshold) {
      v = 0.0;
      ++zeroed;
    }
  }
  return zeroed;
}

void CsrMatrix::Compact(std::vector<int64_t>* kept_old_positions) {
  if (kept_old_positions != nullptr) kept_old_positions->clear();
  std::vector<int64_t> new_row_ptr(rows_ + 1, 0);
  int64_t write = 0;
  for (int i = 0; i < rows_; ++i) {
    for (int64_t e = row_ptr_[i]; e < row_ptr_[i + 1]; ++e) {
      if (values_[e] == 0.0) continue;
      col_idx_[write] = col_idx_[e];
      values_[write] = values_[e];
      if (kept_old_positions != nullptr) kept_old_positions->push_back(e);
      ++write;
    }
    new_row_ptr[i + 1] = write;
  }
  col_idx_.resize(write);
  values_.resize(write);
  row_ptr_ = std::move(new_row_ptr);
}

void CsrMatrix::MatvecInto(std::span<const double> x,
                           std::span<double> y) const {
  LEAST_CHECK(static_cast<int>(x.size()) == cols_);
  LEAST_CHECK(static_cast<int>(y.size()) == rows_);
  for (int i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (int64_t e = row_ptr_[i]; e < row_ptr_[i + 1]; ++e) {
      s += values_[e] * x[col_idx_[e]];
    }
    y[i] = s;
  }
}

void CsrMatrix::MatvecTransposeInto(std::span<const double> x,
                                    std::span<double> y) const {
  LEAST_CHECK(static_cast<int>(x.size()) == rows_);
  LEAST_CHECK(static_cast<int>(y.size()) == cols_);
  std::fill(y.begin(), y.end(), 0.0);
  for (int i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (int64_t e = row_ptr_[i]; e < row_ptr_[i + 1]; ++e) {
      y[col_idx_[e]] += values_[e] * xi;
    }
  }
}

bool CsrMatrix::SamePattern(const CsrMatrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         row_ptr_ == other.row_ptr_ && col_idx_ == other.col_idx_;
}

}  // namespace least
