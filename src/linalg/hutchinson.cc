#include "linalg/hutchinson.h"

#include <vector>

namespace least {

double EstimateExpmTraceMinusDim(const CsrMatrix& s,
                                 const HutchinsonOptions& opts) {
  LEAST_CHECK(s.rows() == s.cols());
  const int d = s.rows();
  if (d == 0) return 0.0;

  // Variance reduction: Tr(S) and Tr(S²) are computed *exactly* in
  // O(nnz log) — they dominate the series and carry most of the estimator
  // variance. Only the k >= 3 tail (already damped by 1/k!) is estimated
  // stochastically.
  double exact = 0.0;
  for (int i = 0; i < d; ++i) exact += s.At(i, i);
  double trace_s2 = 0.0;
  for (int i = 0; i < s.rows(); ++i) {
    for (int64_t e = s.row_ptr()[i]; e < s.row_ptr()[i + 1]; ++e) {
      trace_s2 += s.values()[e] * s.At(s.col_idx()[e], i);
    }
  }
  exact += trace_s2 / 2.0;

  Rng rng(opts.seed);
  std::vector<double> z(d), v(d), next(d);
  double acc = 0.0;
  for (int p = 0; p < opts.probes; ++p) {
    for (int i = 0; i < d; ++i) z[i] = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    v = z;
    double factorial = 1.0;
    double probe_sum = 0.0;
    for (int k = 1; k <= opts.terms; ++k) {
      s.MatvecInto(v, next);
      std::swap(v, next);
      factorial *= k;
      if (k < 3) continue;  // first two moments handled exactly above
      double dot = 0.0;
      for (int i = 0; i < d; ++i) dot += z[i] * v[i];
      probe_sum += dot / factorial;
    }
    acc += probe_sum;
  }
  return exact + acc / opts.probes;
}

}  // namespace least
