/// \file workspace.h
/// \brief Reusable scratch arena for the dense kernels and learners.
///
/// The optimizer hot loops (constraint evaluation, `Expm`, loss gradients)
/// need a handful of temporary matrices and vectors *per iteration*. Before
/// this layer existed they were allocated fresh each call; a `Workspace`
/// instead pools them so steady-state iterations perform **zero heap
/// allocations** (verified by `tests/test_workspace.cc` with a counting
/// global allocator).
///
/// Model: a `Workspace` owns three pools (matrices, double vectors, int
/// vectors). `Matrix(r, c)` / `Vector(n)` / `IntVector(n)` check out the
/// next slot of the respective pool, reshaped to the requested size with
/// unspecified contents — callers must initialize what they read. Slots are
/// stable objects (`DenseMatrix&` references stay valid while checked out).
///
/// Nesting uses stack discipline via `WorkspaceScope`: a callee opens a
/// scope, draws whatever scratch it needs, and the scope's destructor
/// returns those slots to the pool — the caller's earlier checkouts are
/// untouched. Because every hot path draws slots in a deterministic order,
/// each slot converges to its high-water size after the first iteration and
/// is never reallocated again (`grow_events()` goes flat — the instrumented
/// half of the zero-allocation proof).
///
/// Thread safety: none — a `Workspace` belongs to one running `Fit` (they
/// are constructed per call, which is what keeps the learners reentrant).
/// Kernels that parallelize internally never touch the workspace from worker
/// threads; they draw scratch before fanning out.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "linalg/dense_matrix.h"

namespace least {

/// \brief Pooled scratch: matrices, double vectors, and int vectors.
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Checks out the next matrix slot, reshaped to rows x cols. Contents are
  /// unspecified (previous occupant's bits); initialize before reading.
  DenseMatrix& Matrix(int rows, int cols);

  /// Checks out the next double-vector slot, resized to n (contents
  /// unspecified).
  std::vector<double>& Vector(size_t n);

  /// Checks out the next int-vector slot, resized to n (contents
  /// unspecified).
  std::vector<int>& IntVector(size_t n);

  /// Returns every slot to the pool. All outstanding references become
  /// checkout-able again; the caller must not use them past this point.
  void Reset();

  /// Number of checkouts that had to grow a slot's underlying capacity.
  /// Flat across iterations == the steady state allocates nothing.
  int64_t grow_events() const { return grow_events_; }

  /// Total bytes currently retained by the pools (capacity, not size).
  size_t retained_bytes() const;

 private:
  friend class WorkspaceScope;

  std::vector<std::unique_ptr<DenseMatrix>> matrices_;
  std::vector<std::unique_ptr<std::vector<double>>> vectors_;
  std::vector<std::unique_ptr<std::vector<int>>> int_vectors_;
  size_t matrix_top_ = 0;
  size_t vector_top_ = 0;
  size_t int_vector_top_ = 0;
  int64_t grow_events_ = 0;
};

/// \brief RAII checkout mark: slots drawn while the scope is open are
/// returned when it closes; the caller's earlier checkouts stay live.
class WorkspaceScope {
 public:
  explicit WorkspaceScope(Workspace& ws)
      : ws_(ws), matrix_mark_(ws.matrix_top_), vector_mark_(ws.vector_top_),
        int_vector_mark_(ws.int_vector_top_) {}
  ~WorkspaceScope() {
    ws_.matrix_top_ = matrix_mark_;
    ws_.vector_top_ = vector_mark_;
    ws_.int_vector_top_ = int_vector_mark_;
  }
  WorkspaceScope(const WorkspaceScope&) = delete;
  WorkspaceScope& operator=(const WorkspaceScope&) = delete;

 private:
  Workspace& ws_;
  size_t matrix_mark_;
  size_t vector_mark_;
  size_t int_vector_mark_;
};

}  // namespace least
