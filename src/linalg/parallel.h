/// \file parallel.h
/// \brief Executor seam between the linear-algebra kernels and the runtime
/// thread pool, plus deterministic parallel reductions.
///
/// Layering is `util → linalg → core → runtime/io`: the kernels in this
/// directory must not depend on `runtime/`. They instead call
/// `MaybeParallelFor`, which splits a loop across a process-global
/// `ParallelExecutor` when one has been installed (normally the fleet
/// runtime's `ThreadPool`, see `runtime/thread_pool.h`) and falls back to a
/// serial loop otherwise. Installing an executor is strictly optional; all
/// kernels remain correct — and allocation patterns unchanged — without one.
///
/// Determinism contract: every kernel in this library parallelizes in one of
/// two shapes, both bitwise identical with and without an executor and across
/// any thread count:
///   1. *Pure output partitions* — each output element is written by exactly
///      one chunk, computed with the same operation order as the serial loop,
///      and no cross-chunk floating-point state is shared.
///   2. *Fixed-shape chunk-tree reductions* (`DeterministicReduce`) — the
///      range is cut into chunks whose boundaries depend only on the range
///      length (never on thread count or grain), each chunk reduces serially
///      in index order, and the per-chunk partials are combined by a fixed
///      pairwise tree. The schedule decides only *when* a chunk runs, never
///      what it computes or how partials combine.
/// The fleet runtime relies on this for reproducible, checkpointable models.
///
/// Allocation contract: the serial fallback path of `MaybeParallelFor*` and
/// all of `DeterministicReduce` are heap-allocation-free (the reduction keeps
/// its partials in a fixed-size stack array). Dispatching onto an installed
/// executor may allocate O(1) bookkeeping per fan-out; the zero-allocation
/// steady-state guarantee of the learners is stated for serial execution and
/// verified by `tests/test_workspace.cc`.

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <utility>

namespace least {

/// \brief Abstract range-splitting executor (implemented by
/// `runtime::ThreadPool`). Implementations must invoke `fn` on disjoint
/// subranges covering exactly [begin, end), may run subranges concurrently,
/// and must not return before every subrange has completed.
class ParallelExecutor {
 public:
  virtual ~ParallelExecutor() = default;

  /// Number of worker threads available (>= 1 means parallelism exists).
  virtual int concurrency() const = 0;

  /// Runs `fn(lo, hi)` over disjoint chunks of [begin, end) of at most
  /// `grain` elements each (`grain` < 1 lets the executor choose). Blocks
  /// until all chunks are done. The calling thread participates, so this is
  /// safe to invoke from a worker thread of the executor itself (nested
  /// parallelism degrades to serial execution rather than deadlocking).
  virtual void ParallelFor(
      int64_t begin, int64_t end, int64_t grain,
      const std::function<void(int64_t, int64_t)>& fn) = 0;
};

/// Installs (or, with nullptr, removes) the process-global executor used by
/// the dense kernels. The executor is borrowed, not owned: the caller must
/// keep it alive until it is uninstalled. Thread-safe; typically called once
/// at startup by whoever owns the runtime pool.
void SetParallelExecutor(ParallelExecutor* executor);

/// Returns the installed executor, or nullptr when kernels run serially.
ParallelExecutor* GetParallelExecutor();

/// Minimum element count below which `MaybeParallelFor` always runs serially
/// (fan-out overhead would dominate tiny loops, and the fleet scheduler
/// saturates the pool with whole jobs anyway).
inline constexpr int64_t kParallelMinWork = 1 << 14;

/// Minimum flop estimate below which `MaybeParallelForFlops` runs serially
/// (~a 100x100x100 gemm; below that, fan-out overhead dominates).
inline constexpr int64_t kParallelMinFlops = int64_t{1} << 20;

namespace parallel_detail {

/// True when an executor is installed, has real parallelism, and the work
/// estimate clears `min_work`. Lives in the .cc so the header stays free of
/// the atomic load.
bool ShouldParallelize(int64_t work, int64_t min_work, int64_t span);

/// Type-erased dispatch onto the installed executor (which the caller has
/// already checked exists via `ShouldParallelize`).
void Dispatch(int64_t begin, int64_t end, int64_t grain,
              const std::function<void(int64_t, int64_t)>& fn);

}  // namespace parallel_detail

/// Splits [begin, end) into chunks of `grain` (< 1 = executor-chosen) and
/// runs them on the global executor when one is installed and the range
/// holds at least `kParallelMinWork` elements; otherwise runs
/// `fn(begin, end)` inline — with no type erasure and no allocation. Safe
/// for pure output partitions only — see the determinism contract in the
/// file comment.
template <typename Fn>
void MaybeParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  if (end <= begin) return;
  if (!parallel_detail::ShouldParallelize(end - begin, kParallelMinWork,
                                          end - begin)) {
    fn(begin, end);
    return;
  }
  parallel_detail::Dispatch(begin, end, grain,
                            std::function<void(int64_t, int64_t)>(fn));
}

/// As `MaybeParallelFor`, but gated on a caller-supplied flop estimate
/// instead of the range length — for kernels whose per-element cost is much
/// larger than one operation (gemm rows, batched gradient rows).
/// Parallelizes when an executor is installed and `flops` is at least
/// `kParallelMinFlops`.
template <typename Fn>
void MaybeParallelForFlops(int64_t flops, int64_t begin, int64_t end,
                           int64_t grain, Fn&& fn) {
  if (end <= begin) return;
  if (!parallel_detail::ShouldParallelize(flops, kParallelMinFlops,
                                          end - begin)) {
    fn(begin, end);
    return;
  }
  parallel_detail::Dispatch(begin, end, grain,
                            std::function<void(int64_t, int64_t)>(fn));
}

// ---------------------------------------------------------------------------
// Deterministic reductions.
// ---------------------------------------------------------------------------

/// Elements per reduction chunk (lower bound). The chunk layout is a pure
/// function of the range length, never of the executor, so reductions are
/// bitwise reproducible at any thread count — including zero.
inline constexpr int64_t kReduceChunk = 8192;

/// Upper bound on the number of reduction chunks; keeps the partials in a
/// fixed-size stack array (no allocation) and bounds combine-tree depth.
inline constexpr int kReduceMaxChunks = 64;

namespace parallel_detail {

/// Chunk size for a range of `n` elements: at least `kReduceChunk`, grown so
/// that at most `kReduceMaxChunks` chunks cover the range.
inline int64_t ReduceChunkSize(int64_t n) {
  const int64_t for_cap = (n + kReduceMaxChunks - 1) / kReduceMaxChunks;
  return for_cap > kReduceChunk ? for_cap : kReduceChunk;
}

}  // namespace parallel_detail

/// \brief Deterministic parallel reduction over [begin, end).
///
/// `chunk_fn(lo, hi)` must return the serial reduction of [lo, hi); chunks
/// are laid out by `ReduceChunkSize(end - begin)` — a pure function of the
/// range length — and evaluated independently (possibly concurrently, each
/// serially in index order). Partials are then combined with `combine` in a
/// fixed pairwise tree: (p0⊕p1)⊕(p2⊕p3)…, identical for every thread count.
/// The result is therefore bitwise reproducible with or without an executor,
/// for any grain, at any pool size.
///
/// `chunk_fn` may also write side outputs, provided they form a pure
/// partition of the range (used by `AddL1Subgradient`).
///
/// Note: the chunked combine order intentionally differs from a plain
/// left-to-right serial sum — it is the *new* canonical order, used
/// identically everywhere, and is at least as accurate (pairwise summation).
template <typename T, typename ChunkFn, typename CombineFn>
T DeterministicReduce(int64_t begin, int64_t end, T identity,
                      ChunkFn&& chunk_fn, CombineFn&& combine) {
  const int64_t n = end - begin;
  if (n <= 0) return identity;
  const int64_t chunk = parallel_detail::ReduceChunkSize(n);
  const int num_chunks = static_cast<int>((n + chunk - 1) / chunk);
  std::array<T, kReduceMaxChunks> partials;
  auto run_chunks = [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      const int64_t lo = begin + c * chunk;
      const int64_t hi = lo + chunk < end ? lo + chunk : end;
      partials[static_cast<size_t>(c)] = chunk_fn(lo, hi);
    }
  };
  // Gate on the element count like the elementwise kernels do
  // (kParallelMinWork, not the gemm flop threshold): a reduction's
  // per-element cost matches an elementwise map, and n >= kParallelMinWork
  // guarantees at least two chunks to hand out.
  if (!parallel_detail::ShouldParallelize(n, kParallelMinWork, num_chunks)) {
    run_chunks(0, num_chunks);
  } else {
    parallel_detail::Dispatch(0, num_chunks, /*grain=*/1,
                              std::function<void(int64_t, int64_t)>(
                                  run_chunks));
  }
  // Fixed-shape pairwise combine tree (shape depends only on num_chunks).
  for (int width = num_chunks; width > 1;) {
    const int half = width / 2;
    for (int i = 0; i < half; ++i) {
      partials[i] = combine(partials[2 * i], partials[2 * i + 1]);
    }
    if (width % 2 == 1) partials[half] = partials[width - 1];
    width = half + width % 2;
  }
  return partials[0];
}

/// Deterministic sum: `chunk_fn(lo, hi)` returns the serial sum of its chunk.
template <typename ChunkFn>
double DeterministicSum(int64_t begin, int64_t end, ChunkFn&& chunk_fn) {
  return DeterministicReduce(begin, end, 0.0,
                             std::forward<ChunkFn>(chunk_fn),
                             [](double a, double b) { return a + b; });
}

/// Deterministic Σ p[i]² over p[0, n) — the ‖·‖² shape shared by the dense
/// loss, the sparse learner's residual, and `FrobeniusNorm`.
inline double DeterministicSumSquares(const double* p, int64_t n) {
  return DeterministicSum(0, n, [p](int64_t lo, int64_t hi) {
    double s = 0.0;
    for (int64_t i = lo; i < hi; ++i) s += p[i] * p[i];
    return s;
  });
}

/// Deterministic max: `chunk_fn(lo, hi)` returns the serial max of its chunk.
/// (Max is order-insensitive for non-NaN doubles, but routing it through the
/// same machinery keeps one code path and one set of tests.)
template <typename ChunkFn>
double DeterministicMax(int64_t begin, int64_t end, double identity,
                        ChunkFn&& chunk_fn) {
  return DeterministicReduce(begin, end, identity,
                             std::forward<ChunkFn>(chunk_fn),
                             [](double a, double b) { return a > b ? a : b; });
}

}  // namespace least
