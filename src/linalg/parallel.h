/// \file parallel.h
/// \brief Executor seam between the linear-algebra kernels and the runtime
/// thread pool.
///
/// Layering is `util → linalg → core → runtime/io`: the kernels in this
/// directory must not depend on `runtime/`. They instead call
/// `MaybeParallelFor`, which splits a loop across a process-global
/// `ParallelExecutor` when one has been installed (normally the fleet
/// runtime's `ThreadPool`, see `runtime/thread_pool.h`) and falls back to a
/// serial loop otherwise. Installing an executor is strictly optional; all
/// kernels remain correct — and allocation patterns unchanged — without one.
///
/// Determinism contract: every kernel in this library parallelizes as a pure
/// partition of its output — each output element is written by exactly one
/// chunk, computed with the same operation order as the serial loop, and no
/// kernel performs a cross-chunk floating-point reduction. Results are
/// therefore bitwise identical with and without an executor and across any
/// thread count, which the fleet runtime relies on for reproducible,
/// checkpointable models.

#pragma once

#include <cstdint>
#include <functional>

namespace least {

/// \brief Abstract range-splitting executor (implemented by
/// `runtime::ThreadPool`). Implementations must invoke `fn` on disjoint
/// subranges covering exactly [begin, end), may run subranges concurrently,
/// and must not return before every subrange has completed.
class ParallelExecutor {
 public:
  virtual ~ParallelExecutor() = default;

  /// Number of worker threads available (>= 1 means parallelism exists).
  virtual int concurrency() const = 0;

  /// Runs `fn(lo, hi)` over disjoint chunks of [begin, end) of at most
  /// `grain` elements each (`grain` < 1 lets the executor choose). Blocks
  /// until all chunks are done. The calling thread participates, so this is
  /// safe to invoke from a worker thread of the executor itself (nested
  /// parallelism degrades to serial execution rather than deadlocking).
  virtual void ParallelFor(
      int64_t begin, int64_t end, int64_t grain,
      const std::function<void(int64_t, int64_t)>& fn) = 0;
};

/// Installs (or, with nullptr, removes) the process-global executor used by
/// the dense kernels. The executor is borrowed, not owned: the caller must
/// keep it alive until it is uninstalled. Thread-safe; typically called once
/// at startup by whoever owns the runtime pool.
void SetParallelExecutor(ParallelExecutor* executor);

/// Returns the installed executor, or nullptr when kernels run serially.
ParallelExecutor* GetParallelExecutor();

/// Minimum element count below which `MaybeParallelFor` always runs serially
/// (fan-out overhead would dominate tiny loops, and the fleet scheduler
/// saturates the pool with whole jobs anyway).
inline constexpr int64_t kParallelMinWork = 1 << 14;

/// Minimum flop estimate below which `MaybeParallelForFlops` runs serially
/// (~a 100x100x100 gemm; below that, fan-out overhead dominates).
inline constexpr int64_t kParallelMinFlops = int64_t{1} << 20;

/// Splits [begin, end) into chunks of `grain` (< 1 = executor-chosen) and
/// runs them on the global executor when one is installed and the range
/// holds at least `kParallelMinWork` elements; otherwise runs
/// `fn(begin, end)` inline. Safe for pure output partitions only — see the
/// determinism contract in the file comment.
void MaybeParallelFor(int64_t begin, int64_t end, int64_t grain,
                      const std::function<void(int64_t, int64_t)>& fn);

/// As `MaybeParallelFor`, but gated on a caller-supplied flop estimate
/// instead of the range length — for kernels whose per-element cost is much
/// larger than one operation (gemm rows, batched gradient rows).
/// Parallelizes when an executor is installed and `flops` is at least
/// `kParallelMinFlops`.
void MaybeParallelForFlops(int64_t flops, int64_t begin, int64_t end,
                           int64_t grain,
                           const std::function<void(int64_t, int64_t)>& fn);

}  // namespace least
