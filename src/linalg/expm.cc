#include "linalg/expm.h"

#include <array>
#include <cmath>

#include "linalg/lu.h"

namespace least {

namespace {

// Padé coefficient tables from Higham, "The scaling and squaring method for
// the matrix exponential revisited", SIAM J. Matrix Anal. Appl. 26(4), 2005.
constexpr std::array<double, 4> kPade3 = {120, 60, 12, 1};
constexpr std::array<double, 6> kPade5 = {30240, 15120, 3360, 420, 30, 1};
constexpr std::array<double, 8> kPade7 = {17297280, 8648640, 1995840, 277200,
                                          25200, 1512, 56, 1};
constexpr std::array<double, 10> kPade9 = {
    17643225600., 8821612800., 2075673600., 302702400., 30270240.,
    2162160.,     110880.,     3960.,       90.,        1.};
constexpr std::array<double, 14> kPade13 = {
    64764752532480000., 32382376266240000., 7771770303897600.,
    1187353796428800.,  129060195264000.,   10559470521600.,
    670442572800.,      33522128640.,       1323241920.,
    40840800.,          960960.,            16380.,
    90.,                1.};

// theta_m bounds from the same paper (||A||_1 below which order-m Padé is
// accurate to double precision).
constexpr double kTheta3 = 1.495585217958292e-2;
constexpr double kTheta5 = 2.539398330063230e-1;
constexpr double kTheta7 = 9.504178996162932e-1;
constexpr double kTheta9 = 2.097847961257068e0;
constexpr double kTheta13 = 5.371920351148152e0;

// Evaluates the order-m Padé approximant r_m(A) = [q_m(A)]^{-1} p_m(A) into
// `out`, given precomputed even powers of A (even[p] = A^{2p} for p >= 1).
// For odd/even coefficient split:
// p = A * (sum over odd i of c_i A^{i-1}) + (sum over even i of c_i A^i),
// q mirrors p with signs flipped on odd terms. All scratch comes from `ws`.
template <size_t N>
void PadeApproxInto(const DenseMatrix& a, DenseMatrix* const* even,
                    const std::array<double, N>& c, DenseMatrix* out,
                    Workspace& ws) {
  const int d = a.rows();
  WorkspaceScope scope(ws);
  DenseMatrix& u_inner = ws.Matrix(d, d);  // sum over odd coefs (before A *)
  DenseMatrix& v = ws.Matrix(d, d);        // sum over even coefficients
  u_inner.Fill(0.0);
  v.Fill(0.0);
  for (int i = 0; i < d; ++i) {
    u_inner(i, i) = c[1];
    v(i, i) = c[0];
  }
  for (size_t i = 2; i < N; ++i) {
    const DenseMatrix& pow = *even[i / 2];
    if (i % 2 == 1) {
      u_inner.AddScaled(pow, c[i]);
    } else {
      v.AddScaled(pow, c[i]);
    }
  }
  DenseMatrix& u = ws.Matrix(d, d);
  MatmulInto(a, u_inner, &u);
  // Solve (v - u) r = (v + u).
  DenseMatrix& num = ws.Matrix(d, d);
  num.CopyFrom(v);
  num.AddScaled(u, 1.0);
  DenseMatrix& den = ws.Matrix(d, d);
  den.CopyFrom(v);
  den.AddScaled(u, -1.0);
  std::vector<int>& perm = ws.IntVector(d);
  const Status factored = LuFactorInPlace(&den, &perm);
  LEAST_CHECK(factored.ok());
  LuSolveInPlace(den, perm, &num, ws.Vector(d));
  out->CopyFrom(num);
}

}  // namespace

void ExpmInto(const DenseMatrix& a, DenseMatrix* out, Workspace* ws_opt) {
  LEAST_CHECK(a.rows() == a.cols());
  LEAST_CHECK(out != nullptr && out != &a);
  const int d = a.rows();
  if (d == 0) {
    out->Reshape(0, 0);
    return;
  }
  if (d == 1) {
    out->Reshape(1, 1);
    (*out)(0, 0) = std::exp(a(0, 0));
    return;
  }
  Workspace local;
  Workspace& ws = ws_opt != nullptr ? *ws_opt : local;
  WorkspaceScope scope(ws);

  const double norm = a.OneNorm();
  // Even powers even[p] = A^{2p}; higher ones are formed lazily as needed
  // (Padé-9 needs up to A^8). Formed as A² * A^{2(p-1)} in increasing p.
  DenseMatrix* even[5] = {nullptr, nullptr, nullptr, nullptr, nullptr};
  even[1] = &ws.Matrix(d, d);
  MatmulInto(a, a, even[1]);
  int have = 1;
  auto ensure_even = [&](int p) {
    while (have < p) {
      DenseMatrix& next = ws.Matrix(d, d);
      MatmulInto(*even[1], *even[have], &next);
      even[have + 1] = &next;
      ++have;
    }
  };

  if (norm <= kTheta3) {
    PadeApproxInto(a, even, kPade3, out, ws);
    return;
  }
  if (norm <= kTheta5) {
    ensure_even(2);
    PadeApproxInto(a, even, kPade5, out, ws);
    return;
  }
  if (norm <= kTheta7) {
    ensure_even(3);
    PadeApproxInto(a, even, kPade7, out, ws);
    return;
  }
  if (norm <= kTheta9) {
    ensure_even(4);
    PadeApproxInto(a, even, kPade9, out, ws);
    return;
  }

  // Scaling and squaring with Padé-13.
  int squarings = 0;
  double scaled_norm = norm;
  while (scaled_norm > kTheta13) {
    scaled_norm *= 0.5;
    ++squarings;
  }
  DenseMatrix& scaled = ws.Matrix(d, d);
  scaled.CopyFrom(a);
  scaled.Scale(std::ldexp(1.0, -squarings));
  DenseMatrix& a2 = ws.Matrix(d, d);
  DenseMatrix& a4 = ws.Matrix(d, d);
  DenseMatrix& a6 = ws.Matrix(d, d);
  MatmulInto(scaled, scaled, &a2);
  MatmulInto(a2, a2, &a4);
  MatmulInto(a2, a4, &a6);
  // Higham's efficient p13 evaluation groups terms; the straightforward
  // grouped form below uses A^2, A^4, A^6 only.
  const auto& c = kPade13;

  DenseMatrix& tmp = ws.Matrix(d, d);
  // u = A * (a6*(c13 a6 + c11 a4 + c9 a2) + c7 a6 + c5 a4 + c3 a2 + c1 I)
  DenseMatrix& inner = ws.Matrix(d, d);
  inner.Fill(0.0);
  inner.AddScaled(a6, c[13]);
  inner.AddScaled(a4, c[11]);
  inner.AddScaled(a2, c[9]);
  MatmulInto(a6, inner, &tmp);
  tmp.AddScaled(a6, c[7]);
  tmp.AddScaled(a4, c[5]);
  tmp.AddScaled(a2, c[3]);
  for (int i = 0; i < d; ++i) tmp(i, i) += c[1];
  DenseMatrix& u = ws.Matrix(d, d);
  MatmulInto(scaled, tmp, &u);
  // v = a6*(c12 a6 + c10 a4 + c8 a2) + c6 a6 + c4 a4 + c2 a2 + c0 I
  inner.Fill(0.0);
  inner.AddScaled(a6, c[12]);
  inner.AddScaled(a4, c[10]);
  inner.AddScaled(a2, c[8]);
  DenseMatrix& v = ws.Matrix(d, d);
  MatmulInto(a6, inner, &v);
  v.AddScaled(a6, c[6]);
  v.AddScaled(a4, c[4]);
  v.AddScaled(a2, c[2]);
  for (int i = 0; i < d; ++i) v(i, i) += c[0];

  DenseMatrix& num = ws.Matrix(d, d);
  num.CopyFrom(v);
  num.AddScaled(u, 1.0);
  DenseMatrix& den = ws.Matrix(d, d);
  den.CopyFrom(v);
  den.AddScaled(u, -1.0);
  std::vector<int>& perm = ws.IntVector(d);
  const Status factored = LuFactorInPlace(&den, &perm);
  LEAST_CHECK(factored.ok());
  LuSolveInPlace(den, perm, &num, ws.Vector(d));
  DenseMatrix* r = &num;
  DenseMatrix* r2 = &ws.Matrix(d, d);
  for (int s = 0; s < squarings; ++s) {
    MatmulInto(*r, *r, r2);
    std::swap(r, r2);
  }
  out->CopyFrom(*r);
}

DenseMatrix Expm(const DenseMatrix& a) {
  DenseMatrix out;
  ExpmInto(a, &out, nullptr);
  return out;
}

DenseMatrix ExpmTaylor(const DenseMatrix& a, double tol, int max_terms) {
  LEAST_CHECK(a.rows() == a.cols());
  const int d = a.rows();
  DenseMatrix sum = DenseMatrix::Identity(d);
  DenseMatrix term = DenseMatrix::Identity(d);
  DenseMatrix next(d, d);
  for (int k = 1; k <= max_terms; ++k) {
    MatmulInto(term, a, &next);
    next.Scale(1.0 / k);
    std::swap(term, next);
    sum.AddScaled(term, 1.0);
    if (term.MaxAbs() < tol) break;
  }
  return sum;
}

}  // namespace least
