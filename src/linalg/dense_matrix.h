/// \file dense_matrix.h
/// \brief Row-major dense matrix of doubles.
///
/// This is the workhorse of the dense (LEAST-TF analog) code path and the
/// NOTEARS baseline. It is deliberately simple — contiguous storage, no
/// expression templates — and allocation-free in hot loops via the `*Into`
/// variants. `MatmulInto` is a cache-blocked, B-packing kernel whose inner
/// loops the compiler vectorizes; it splits rows across the optional global
/// `ParallelExecutor` (see `linalg/parallel.h`) for large products. All
/// kernels are bitwise deterministic: results are identical at any thread
/// count, for any grain, and for any gemm blocking (each output element
/// always accumulates its k-terms in the same fixed order).

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace least {

/// \brief Dense rows x cols matrix with contiguous row-major storage.
class DenseMatrix {
 public:
  /// Empty 0x0 matrix.
  DenseMatrix() = default;

  /// Zero-initialized rows x cols matrix.
  DenseMatrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, 0.0) {
    LEAST_CHECK(rows >= 0 && cols >= 0);
  }

  /// Builds from explicit row-major data. `data.size()` must equal
  /// rows * cols.
  DenseMatrix(int rows, int cols, std::vector<double> data);

  /// d x d identity.
  static DenseMatrix Identity(int d);

  /// Matrix with every entry drawn i.i.d. uniform in [lo, hi).
  static DenseMatrix RandomUniform(int rows, int cols, double lo, double hi,
                                   Rng& rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  /// Element capacity of the underlying storage (for workspace accounting).
  size_t capacity() const { return data_.capacity(); }

  /// Reshapes to rows x cols, reusing storage where capacity allows.
  /// Contents are unspecified afterwards (scratch-buffer semantics; the
  /// `Workspace` pool is the intended caller).
  void Reshape(int rows, int cols);

  /// Copies shape and contents from `other`, reusing storage where capacity
  /// allows.
  void CopyFrom(const DenseMatrix& other);

  double& operator()(int i, int j) {
    LEAST_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i) * cols_ + j];
  }
  double operator()(int i, int j) const {
    LEAST_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i) * cols_ + j];
  }

  /// Contiguous storage (row-major).
  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }
  /// Pointer to the start of row i.
  double* row(int i) { return data_.data() + static_cast<size_t>(i) * cols_; }
  const double* row(int i) const {
    return data_.data() + static_cast<size_t>(i) * cols_;
  }

  /// Sets every entry to `v`.
  void Fill(double v);
  /// Sets the diagonal entries to `v` (square matrices only).
  void FillDiagonal(double v);

  /// this += alpha * other (same shape).
  void AddScaled(const DenseMatrix& other, double alpha);
  /// Multiplies every entry by `alpha`.
  void Scale(double alpha);

  /// Entry-wise (Hadamard) product, out-of-place.
  DenseMatrix Hadamard(const DenseMatrix& other) const;
  /// out = this ∘ other (out must not alias either operand's storage).
  void HadamardInto(const DenseMatrix& other, DenseMatrix* out) const;
  /// Entry-wise square: S = this ∘ this.
  DenseMatrix HadamardSquare() const;
  /// out = this ∘ this (allocation-free; out is reshaped).
  void HadamardSquareInto(DenseMatrix* out) const;

  DenseMatrix Transpose() const;
  /// out = thisᵀ (allocation-free; out is reshaped, must not alias this).
  void TransposeInto(DenseMatrix* out) const;

  /// Sum of diagonal entries (square only).
  double Trace() const;
  /// Frobenius norm (deterministic chunked reduction, see parallel.h).
  double FrobeniusNorm() const;
  /// Maximum absolute entry (deterministic chunked reduction).
  double MaxAbs() const;
  /// Induced 1-norm (max absolute column sum). Single row-streaming pass
  /// over column blocks — never the cache-hostile column-major walk.
  double OneNorm() const;
  /// Sum of all entries.
  double Sum() const;

  /// Number of entries with |a_ij| > tol.
  long long CountNonZeros(double tol = 0.0) const;
  /// Zeroes entries with |a_ij| < threshold (strict), in place.
  void ApplyThreshold(double threshold);

  /// Vector of row sums (length rows()).
  std::vector<double> RowSums() const;
  /// Row sums into a caller buffer of length rows() (allocation-free).
  void RowSumsInto(std::span<double> out) const;
  /// Vector of column sums (length cols()).
  std::vector<double> ColSums() const;
  /// Column sums into a caller buffer of length cols() (allocation-free,
  /// row-streaming pass).
  void ColSumsInto(std::span<double> out) const;

  bool SameShape(const DenseMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// \brief Cache-blocking parameters for `MatmulInto`: the packed B panel
/// covers `kc` k-rows by `jc` columns. Results are bitwise independent of
/// the blocking (the k-accumulation order per output element is fixed);
/// only throughput changes. Exposed so tests can sweep it and benches can
/// compare shapes.
struct GemmBlocking {
  int kc;  ///< k-extent of the packed B panel
  int jc;  ///< column extent of the packed B panel
};

/// Overrides the global gemm blocking (values < 1 restore the defaults).
/// Intended for tests/benches; thread-safe.
void SetGemmBlocking(int kc, int jc);

/// Currently active blocking.
GemmBlocking GetGemmBlocking();

/// out = a * b. Cache-blocked, B-packing kernel; `out` must not alias `a`
/// or `b`. Rows split across the optional global executor; each output
/// element accumulates its k-terms in increasing-k order regardless of
/// blocking, grain, or thread count, so results are bitwise identical to
/// `MatmulReferenceInto` in every configuration.
void MatmulInto(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix* out);

/// Reference textbook ikj kernel (serial, unblocked). Kept as the bitwise
/// golden for the blocked kernel and as the "naive" column of
/// `bench/kernel_micro`.
void MatmulReferenceInto(const DenseMatrix& a, const DenseMatrix& b,
                         DenseMatrix* out);

/// Returns a * b.
DenseMatrix Matmul(const DenseMatrix& a, const DenseMatrix& b);

/// Returns a + b.
DenseMatrix Add(const DenseMatrix& a, const DenseMatrix& b);

/// Returns a - b.
DenseMatrix Subtract(const DenseMatrix& a, const DenseMatrix& b);

/// Returns max |a_ij - b_ij|; matrices must share shape.
double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b);

/// y = A x (matrix-vector). `x` has length cols, `y` length rows. Rows
/// split across the optional global executor (pure output partition).
void MatvecInto(const DenseMatrix& a, std::span<const double> x,
                std::span<double> y);

}  // namespace least
