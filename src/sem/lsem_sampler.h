/// \file lsem_sampler.h
/// \brief Linear structural equation model (LSEM) sampling.
///
/// The paper's data model (Section II): X_i = w_i^T X + n_i with W[j,i] != 0
/// iff X_j is a parent of X_i, i.e. in matrix form X = X W + N over samples.
/// Samples are generated in topological order of G(W) so every parent value
/// exists before its children. Noise is Gaussian, Exponential or Gumbel —
/// the three benchmark families of Fig. 4.

#pragma once

#include "linalg/dense_matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace least {

/// Additive-noise families used by the paper's benchmark (Fig. 4).
enum class NoiseType {
  kGaussian,     ///< "GS"
  kExponential,  ///< "EX"
  kGumbel,       ///< "GB"
};

const char* NoiseTypeName(NoiseType type);

/// \brief Options for `SampleLsem`.
struct LsemOptions {
  NoiseType noise = NoiseType::kGaussian;
  double noise_scale = 1.0;
  /// Center exponential/Gumbel noise to zero mean (the Gaussian is already
  /// centered). Keeps all noise families comparable, as in the NOTEARS
  /// generator where only the linear part carries signal.
  bool center_noise = true;
};

/// Draws n i.i.d. samples from the LSEM defined by weighted DAG `w`
/// (w(i,j) = weight of edge i -> j). Returns an n x d matrix.
/// Fails with `kInvalidArgument` when `w` is not square or its support is
/// cyclic.
Result<DenseMatrix> SampleLsem(const DenseMatrix& w, int n,
                               const LsemOptions& options, Rng& rng);

/// Subtracts each column's mean in place (used before structure learning on
/// raw observational data; ratings data is centered per *user* instead, see
/// `data/ratings_generator.h`).
void CenterColumns(DenseMatrix* x);

}  // namespace least
