#include "sem/lsem_sampler.h"

#include "graph/dag.h"

namespace least {

const char* NoiseTypeName(NoiseType type) {
  switch (type) {
    case NoiseType::kGaussian:
      return "Gaussian";
    case NoiseType::kExponential:
      return "Exponential";
    case NoiseType::kGumbel:
      return "Gumbel";
  }
  return "?";
}

Result<DenseMatrix> SampleLsem(const DenseMatrix& w, int n,
                               const LsemOptions& options, Rng& rng) {
  if (w.rows() != w.cols()) {
    return Status::InvalidArgument("weight matrix must be square");
  }
  if (n < 0) {
    return Status::InvalidArgument("sample count must be non-negative");
  }
  const int d = w.rows();
  AdjacencyList adj = AdjacencyFromDense(w);
  auto order = TopologicalSort(adj);
  if (!order.ok()) {
    return Status::InvalidArgument("weight matrix support is cyclic");
  }

  // Precompute parent lists: parents[i] = {(j, w(j,i))}.
  std::vector<std::vector<std::pair<int, double>>> parents(d);
  for (int j = 0; j < d; ++j) {
    for (int i : adj[j]) parents[i].push_back({j, w(j, i)});
  }

  auto draw_noise = [&]() -> double {
    switch (options.noise) {
      case NoiseType::kGaussian:
        return rng.Gaussian(0.0, options.noise_scale);
      case NoiseType::kExponential:
        return options.noise_scale *
               rng.Exponential(1.0, options.center_noise);
      case NoiseType::kGumbel:
        return rng.Gumbel(options.noise_scale, options.center_noise);
    }
    return 0.0;
  };

  DenseMatrix x(n, d);
  for (int s = 0; s < n; ++s) {
    double* row = x.row(s);
    for (int node : order.value()) {
      double v = draw_noise();
      for (const auto& [p, weight] : parents[node]) v += weight * row[p];
      row[node] = v;
    }
  }
  return x;
}

void CenterColumns(DenseMatrix* x) {
  LEAST_CHECK(x != nullptr);
  if (x->rows() == 0) return;
  std::vector<double> mean = x->ColSums();
  for (double& m : mean) m /= x->rows();
  for (int i = 0; i < x->rows(); ++i) {
    double* row = x->row(i);
    for (int j = 0; j < x->cols(); ++j) row[j] -= mean[j];
  }
}

}  // namespace least
