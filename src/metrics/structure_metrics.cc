#include "metrics/structure_metrics.h"

#include <algorithm>
#include <cmath>

namespace least {

StructureMetrics EvaluateStructure(const DenseMatrix& w_true,
                                   const DenseMatrix& w_est, double tol) {
  LEAST_CHECK(w_true.rows() == w_true.cols());
  LEAST_CHECK(w_true.SameShape(w_est));
  const int d = w_true.rows();

  StructureMetrics m;
  long long undirected_extra = 0;
  long long undirected_missing = 0;

  auto is_true = [&](int i, int j) {
    return std::fabs(w_true(i, j)) > tol;
  };
  auto is_pred = [&](int i, int j) {
    return std::fabs(w_est(i, j)) > tol;
  };

  for (int i = 0; i < d; ++i) {
    for (int j = 0; j < d; ++j) {
      if (i == j) continue;
      const bool t = is_true(i, j);
      const bool p = is_pred(i, j);
      if (t) ++m.true_edges;
      if (p) ++m.pred_edges;
      if (p && t) {
        ++m.true_positive;
      } else if (p && !t && is_true(j, i)) {
        ++m.reversed;
      } else if (p) {
        ++m.false_positive;
      }
    }
  }

  // Skeleton (undirected) differences for SHD.
  for (int i = 0; i < d; ++i) {
    for (int j = i + 1; j < d; ++j) {
      const bool t = is_true(i, j) || is_true(j, i);
      const bool p = is_pred(i, j) || is_pred(j, i);
      if (p && !t) ++undirected_extra;
      if (t && !p) ++undirected_missing;
    }
  }
  m.missing = undirected_missing;
  // A predicted 2-cycle over a single true edge contributes one reversal and
  // one hit; count reversed pairs once for SHD like count_accuracy does.
  long long reversed_pairs = 0;
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j < d; ++j) {
      if (i == j) continue;
      if (is_pred(i, j) && !is_true(i, j) && is_true(j, i) &&
          !is_pred(j, i)) {
        ++reversed_pairs;
      }
    }
  }
  m.shd = undirected_extra + undirected_missing + reversed_pairs;

  const double non_edges =
      static_cast<double>(d) * (d - 1) / 2.0 - static_cast<double>(m.true_edges);
  m.fdr = m.pred_edges > 0
              ? static_cast<double>(m.reversed + m.false_positive) /
                    static_cast<double>(m.pred_edges)
              : 0.0;
  m.tpr = m.true_edges > 0 ? static_cast<double>(m.true_positive) /
                                 static_cast<double>(m.true_edges)
                           : 0.0;
  m.fpr = non_edges > 0 ? static_cast<double>(m.reversed + m.false_positive) /
                              non_edges
                        : 0.0;
  m.precision = m.pred_edges > 0
                    ? static_cast<double>(m.true_positive) /
                          static_cast<double>(m.pred_edges)
                    : 0.0;
  m.recall = m.tpr;
  m.f1 = (m.precision + m.recall) > 0.0
             ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  return m;
}

double EdgeAucRoc(const DenseMatrix& w_true, const DenseMatrix& w_est) {
  LEAST_CHECK(w_true.rows() == w_true.cols());
  LEAST_CHECK(w_true.SameShape(w_est));
  const int d = w_true.rows();

  struct Scored {
    double score;
    bool positive;
  };
  std::vector<Scored> items;
  items.reserve(static_cast<size_t>(d) * (d - 1));
  long long positives = 0;
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j < d; ++j) {
      if (i == j) continue;
      const bool pos = w_true(i, j) != 0.0;
      positives += pos;
      items.push_back({std::fabs(w_est(i, j)), pos});
    }
  }
  const long long negatives = static_cast<long long>(items.size()) - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  std::sort(items.begin(), items.end(),
            [](const Scored& a, const Scored& b) { return a.score < b.score; });

  // Sum of midranks of the positive class (Mann–Whitney U).
  double rank_sum = 0.0;
  size_t i = 0;
  while (i < items.size()) {
    size_t j = i;
    while (j < items.size() && items[j].score == items[i].score) ++j;
    const double midrank = 0.5 * static_cast<double>(i + 1 + j);  // 1-based
    for (size_t k = i; k < j; ++k) {
      if (items[k].positive) rank_sum += midrank;
    }
    i = j;
  }
  const double u = rank_sum - static_cast<double>(positives) *
                                  (static_cast<double>(positives) + 1) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

}  // namespace least
