/// \file structure_metrics.h
/// \brief Structure-recovery metrics: SHD, F1, FDR/TPR/FPR, AUC-ROC.
///
/// Definitions follow the NOTEARS reference evaluation (`count_accuracy`),
/// which the paper reuses for Fig. 4 and Table I:
///   * true positive  — predicted edge with correct direction;
///   * reversed       — predicted edge whose reverse is a true edge;
///   * false positive — predicted edge absent from the true skeleton;
///   * FDR = (reversed + FP) / max(pred, 1)
///   * TPR = TP / max(true edges, 1)
///   * FPR = (reversed + FP) / max(non-edges in skeleton, 1)
///   * SHD = undirected extra + undirected missing + reversed.
/// F1 is direction-sensitive: precision = TP / pred, recall = TPR.

#pragma once

#include <vector>

#include "linalg/dense_matrix.h"

namespace least {

/// \brief Edge-level confusion counts plus derived rates.
struct StructureMetrics {
  long long true_edges = 0;   ///< edges in the ground truth
  long long pred_edges = 0;   ///< edges in the estimate
  long long true_positive = 0;
  long long reversed = 0;
  long long false_positive = 0;  ///< predicted, not in true skeleton
  long long missing = 0;         ///< skeleton edges absent from estimate

  double fdr = 0.0;
  double tpr = 0.0;
  double fpr = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  long long shd = 0;
};

/// Compares estimated structure (support of `w_est`, |w| > tol) against the
/// ground-truth DAG (support of `w_true`). Diagonals are ignored.
StructureMetrics EvaluateStructure(const DenseMatrix& w_true,
                                   const DenseMatrix& w_est,
                                   double tol = 1e-12);

/// \brief Area under the ROC curve for edge scores.
///
/// Every ordered pair (i, j), i != j, is an instance with score
/// |w_est(i, j)| and positive label iff the true graph has edge i -> j.
/// Computed via the Mann–Whitney rank statistic with midrank tie handling.
/// Returns 0.5 when either class is empty.
double EdgeAucRoc(const DenseMatrix& w_true, const DenseMatrix& w_est);

}  // namespace least
