#include "io/model_serializer.h"

#include <cstdio>
#include <cstring>
#include <vector>

#include "util/atomic_file.h"
#include "util/failpoint.h"
#include "util/fnv.h"

namespace least {

namespace {

constexpr char kMagic[4] = {'L', 'B', 'N', 'M'};
constexpr size_t kHeaderBytes = 16;  // magic + version + checksum

// ---------------------------------------------------------------- writing ---

class Writer {
 public:
  void Raw(const void* p, size_t n) {
    // Empty payloads (0x0 matrices, empty moment arrays) come with a null
    // data pointer; appending nothing must not touch it (UB otherwise).
    if (n > 0) out_.append(static_cast<const char*>(p), n);
  }
  template <typename T>
  void Pod(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Raw(&v, sizeof v);
  }
  void Str(const std::string& s) {
    Pod<uint64_t>(s.size());
    Raw(s.data(), s.size());
  }
  std::string Finish() && { return std::move(out_); }

 private:
  std::string out_;
};

// ---------------------------------------------------------------- reading ---

/// Bounds-checked cursor with a sticky error: after the first failure every
/// read is a no-op, so parse code can run straight-line and check once.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  void Raw(void* p, size_t n) {
    if (!status_.ok()) return;
    if (n > data_.size() - pos_) {
      Fail("truncated model blob");
      return;
    }
    // p may be null for empty payloads; memcpy requires non-null even for
    // n == 0.
    if (n > 0) std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
  }
  template <typename T>
  void Pod(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Raw(v, sizeof *v);
  }
  void Str(std::string* s) {
    uint64_t len = 0;
    Pod(&len);
    if (!status_.ok()) return;
    if (len > remaining()) {
      Fail("string length exceeds blob size");
      return;
    }
    s->assign(data_.data() + pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
  }

  size_t remaining() const { return data_.size() - pos_; }
  const Status& status() const { return status_; }
  void Fail(std::string message) {
    if (status_.ok()) status_ = Status::InvalidArgument(std::move(message));
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  Status status_;
};

// ------------------------------------------------- field-order archiving ---

// One field list shared by the writer and the reader so the two can never
// drift. Adding/removing/reordering LearnOptions fields requires bumping
// `kModelFormatVersion`.
struct WriteArchive {
  Writer& w;
  void operator()(int v) { w.Pod<int32_t>(v); }
  void operator()(long long v) { w.Pod<int64_t>(v); }
  void operator()(double v) { w.Pod<double>(v); }
  void operator()(uint64_t v) { w.Pod<uint64_t>(v); }
  void operator()(bool v) { w.Pod<uint8_t>(v ? 1 : 0); }
};

struct ReadArchive {
  Reader& r;
  void operator()(int& v) {
    int32_t t = 0;
    r.Pod(&t);
    v = t;
  }
  void operator()(long long& v) {
    int64_t t = 0;
    r.Pod(&t);
    v = t;
  }
  void operator()(double& v) { r.Pod(&v); }
  void operator()(uint64_t& v) { r.Pod(&v); }
  void operator()(bool& v) {
    uint8_t t = 0;
    r.Pod(&t);
    v = t != 0;
  }
};

template <typename Archive, typename Options>
void ArchiveOptions(Archive& a, Options& o) {
  a(o.k);
  a(o.alpha);
  a(o.lambda1);
  a(o.learning_rate);
  a(o.lr_decay);
  a(o.batch_size);
  a(o.rho_init);
  a(o.eta_init);
  a(o.rho_growth);
  a(o.rho_progress_ratio);
  a(o.rho_max);
  a(o.max_outer_iterations);
  a(o.max_inner_iterations);
  a(o.tolerance);
  a(o.inner_rtol);
  a(o.inner_check_every);
  a(o.filter_threshold);
  a(o.threshold_warmup_rounds);
  a(o.prune_threshold);
  a(o.init_density);
  a(o.seed);
  a(o.verbose);
  a(o.track_exact_h);
  a(o.terminate_on_h);
  a(o.track_estimated_h);
}

// ---------------------------------------------------------------- matrices ---

void WriteDense(Writer& w, const DenseMatrix& m) {
  w.Pod<int32_t>(m.rows());
  w.Pod<int32_t>(m.cols());
  w.Raw(m.data().data(), m.size() * sizeof(double));
}

DenseMatrix ReadDense(Reader& r) {
  int32_t rows = 0, cols = 0;
  r.Pod(&rows);
  r.Pod(&cols);
  if (!r.status().ok()) return {};
  if (rows < 0 || cols < 0) {
    r.Fail("negative dense matrix dimension");
    return {};
  }
  const uint64_t cells = static_cast<uint64_t>(rows) * static_cast<uint64_t>(cols);
  if (cells > r.remaining() / sizeof(double)) {
    r.Fail("dense payload exceeds blob size");  // pre-allocation sanity
    return {};
  }
  DenseMatrix m(rows, cols);
  r.Raw(m.data().data(), static_cast<size_t>(cells) * sizeof(double));
  return m;
}

void WriteSparse(Writer& w, const CsrMatrix& m) {
  w.Pod<int32_t>(m.rows());
  w.Pod<int32_t>(m.cols());
  w.Pod<int64_t>(m.nnz());
  // Entry triplets in CSR order; `FromTriplets` on sorted unique
  // coordinates rebuilds the identical pattern and values.
  for (int i = 0; i < m.rows(); ++i) {
    for (int64_t e = m.row_ptr()[i]; e < m.row_ptr()[i + 1]; ++e) {
      w.Pod<int32_t>(i);
      w.Pod<int32_t>(m.col_idx()[e]);
      w.Pod<double>(m.values()[e]);
    }
  }
}

CsrMatrix ReadSparse(Reader& r) {
  int32_t rows = 0, cols = 0;
  int64_t nnz = 0;
  r.Pod(&rows);
  r.Pod(&cols);
  r.Pod(&nnz);
  if (!r.status().ok()) return {};
  constexpr size_t kEntryBytes = 2 * sizeof(int32_t) + sizeof(double);
  if (rows < 0 || cols < 0 || nnz < 0 ||
      static_cast<uint64_t>(nnz) > r.remaining() / kEntryBytes) {
    r.Fail("sparse payload exceeds blob size");
    return {};
  }
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(nnz));
  for (int64_t e = 0; e < nnz; ++e) {
    int32_t row = 0, col = 0;
    double value = 0;
    r.Pod(&row);
    r.Pod(&col);
    r.Pod(&value);
    if (!r.status().ok()) return {};
    if (row < 0 || row >= rows || col < 0 || col >= cols) {
      r.Fail("sparse entry coordinate out of range");
      return {};
    }
    triplets.push_back({row, col, value});
  }
  return CsrMatrix::FromTriplets(rows, cols, std::move(triplets));
}

// ------------------------------------------------------------ train state ---

void WriteDoubles(Writer& w, const std::vector<double>& v) {
  w.Pod<uint64_t>(v.size());
  w.Raw(v.data(), v.size() * sizeof(double));
}

bool ReadDoubles(Reader& r, std::vector<double>* out) {
  uint64_t count = 0;
  r.Pod(&count);
  if (!r.status().ok()) return false;
  if (count > r.remaining() / sizeof(double)) {
    r.Fail("double array exceeds blob size");
    return false;
  }
  out->resize(static_cast<size_t>(count));
  r.Raw(out->data(), out->size() * sizeof(double));
  return r.status().ok();
}

void WriteTrainState(Writer& w, const TrainState& s) {
  w.Pod<uint8_t>(s.sparse ? 1 : 0);
  if (s.sparse) {
    WriteSparse(w, s.sparse_w);
  } else {
    WriteDense(w, s.dense_w);
  }
  WriteDoubles(w, s.adam_m);
  WriteDoubles(w, s.adam_v);
  w.Pod<int64_t>(s.adam_t);
  w.Pod<double>(s.rho);
  w.Pod<double>(s.eta);
  w.Pod<double>(s.prev_round_constraint);
  w.Pod<int32_t>(s.outer);
  w.Pod<int32_t>(s.inner_steps);
  w.Pod<double>(s.prev_objective);
  w.Pod<double>(s.last_loss);
  w.Pod<double>(s.constraint_value);
  w.Pod<int64_t>(s.total_inner);
  w.Pod<uint64_t>(s.trace.size());
  for (const TracePoint& tp : s.trace) {
    w.Pod<int32_t>(tp.outer);
    w.Pod<double>(tp.seconds);
    w.Pod<double>(tp.constraint_value);
    w.Pod<double>(tp.loss);
    w.Pod<double>(tp.h_value);
    w.Pod<int64_t>(tp.nnz);
  }
  w.Pod<double>(s.elapsed_seconds);
  w.Str(s.rng_state);
}

std::shared_ptr<const TrainState> ReadTrainState(Reader& r) {
  auto s = std::make_shared<TrainState>();
  uint8_t sparse = 0;
  r.Pod(&sparse);
  if (!r.status().ok()) return nullptr;
  s->sparse = sparse != 0;
  if (s->sparse) {
    s->sparse_w = ReadSparse(r);
  } else {
    s->dense_w = ReadDense(r);
  }
  if (!ReadDoubles(r, &s->adam_m) || !ReadDoubles(r, &s->adam_v)) {
    return nullptr;
  }
  if (s->adam_m.size() != s->adam_v.size()) {
    r.Fail("train state Adam moment arrays differ in length");
    return nullptr;
  }
  r.Pod(&s->adam_t);
  r.Pod(&s->rho);
  r.Pod(&s->eta);
  r.Pod(&s->prev_round_constraint);
  int32_t outer = 0, inner_steps = 0;
  r.Pod(&outer);
  r.Pod(&inner_steps);
  s->outer = outer;
  s->inner_steps = inner_steps;
  r.Pod(&s->prev_objective);
  r.Pod(&s->last_loss);
  r.Pod(&s->constraint_value);
  int64_t total_inner = 0;
  r.Pod(&total_inner);
  s->total_inner = total_inner;
  uint64_t trace_count = 0;
  r.Pod(&trace_count);
  if (!r.status().ok()) return nullptr;
  constexpr size_t kTracePointBytes = sizeof(int32_t) + 4 * sizeof(double) +
                                      sizeof(int64_t);
  if (trace_count > r.remaining() / kTracePointBytes) {
    r.Fail("train state trace exceeds blob size");
    return nullptr;
  }
  s->trace.resize(static_cast<size_t>(trace_count));
  for (TracePoint& tp : s->trace) {
    int32_t tp_outer = 0;
    r.Pod(&tp_outer);
    tp.outer = tp_outer;
    r.Pod(&tp.seconds);
    r.Pod(&tp.constraint_value);
    r.Pod(&tp.loss);
    r.Pod(&tp.h_value);
    int64_t nnz = 0;
    r.Pod(&nnz);
    tp.nnz = nnz;
  }
  r.Pod(&s->elapsed_seconds);
  r.Str(&s->rng_state);
  if (!r.status().ok()) return nullptr;
  if (s->outer < 1 || s->inner_steps < 0 || s->adam_t < 0 ||
      s->total_inner < 0) {
    r.Fail("train state indices out of range");
    return nullptr;
  }
  return s;
}

// ------------------------------------------------------------ dataset spec ---

void WriteDatasetSpec(Writer& w, const DatasetSpec& spec, uint32_t version) {
  w.Pod<uint8_t>(static_cast<uint8_t>(spec.kind));
  w.Str(spec.name);
  w.Str(spec.path);
  w.Pod<int32_t>(spec.rows);
  w.Pod<int32_t>(spec.cols);
  w.Pod<uint64_t>(spec.content_hash);
  w.Pod<uint8_t>(spec.csv_has_header ? 1 : 0);
  if (version >= 4) {
    w.Pod<int32_t>(spec.shard_rows);
    w.Pod<uint64_t>(spec.shards.size());
    for (const DatasetShard& shard : spec.shards) {
      w.Pod<int32_t>(shard.row_begin);
      w.Pod<int32_t>(shard.row_end);
      w.Pod<uint64_t>(shard.byte_offset);
      w.Pod<uint64_t>(shard.byte_size);
      w.Pod<uint64_t>(shard.content_hash);
    }
  }
}

std::optional<DatasetSpec> ReadDatasetSpec(Reader& r, uint32_t version) {
  DatasetSpec spec;
  uint8_t kind = 0;
  r.Pod(&kind);
  if (!r.status().ok()) return std::nullopt;
  // The remote kind (4) exists only in v5+ blobs: a v1-v4 writer could
  // never have produced it, so finding it there is tampering, not data.
  const uint8_t max_kind = version >= 5
                               ? static_cast<uint8_t>(DatasetKind::kRemote)
                               : static_cast<uint8_t>(DatasetKind::kVirtual);
  if (kind > max_kind) {
    r.Fail("unknown dataset kind id " + std::to_string(kind) +
           " for format version " + std::to_string(version));
    return std::nullopt;
  }
  spec.kind = static_cast<DatasetKind>(kind);
  r.Str(&spec.name);
  r.Str(&spec.path);
  int32_t rows = 0, cols = 0;
  r.Pod(&rows);
  r.Pod(&cols);
  if (!r.status().ok()) return std::nullopt;
  if (rows < 0 || cols < 0) {
    r.Fail("negative dataset dimension");
    return std::nullopt;
  }
  spec.rows = rows;
  spec.cols = cols;
  r.Pod(&spec.content_hash);
  uint8_t has_header = 0;
  r.Pod(&has_header);
  if (!r.status().ok()) return std::nullopt;
  if (has_header > 1) {
    r.Fail("dataset header marker is neither 0 nor 1");
    return std::nullopt;
  }
  spec.csv_has_header = has_header != 0;
  if (version >= 4) {
    int32_t shard_rows = 0;
    uint64_t shard_count = 0;
    r.Pod(&shard_rows);
    r.Pod(&shard_count);
    if (!r.status().ok()) return std::nullopt;
    constexpr size_t kShardBytes = 2 * sizeof(int32_t) + 3 * sizeof(uint64_t);
    if (shard_rows < 0 || shard_count > r.remaining() / kShardBytes) {
      r.Fail("dataset shard table exceeds blob size");
      return std::nullopt;
    }
    // shard_rows > 0 with an empty table is legal: an enqueue-time stub
    // records the sharding intent before the first scan fills the layout.
    // A table without shard_rows is not.
    if (shard_count > 0 && shard_rows == 0) {
      r.Fail("dataset shard table disagrees with its shard_rows marker");
      return std::nullopt;
    }
    spec.shard_rows = shard_rows;
    spec.shards.reserve(static_cast<size_t>(shard_count));
    int expect_begin = 0;
    for (uint64_t i = 0; i < shard_count; ++i) {
      DatasetShard shard;
      int32_t row_begin = 0, row_end = 0;
      r.Pod(&row_begin);
      r.Pod(&row_end);
      r.Pod(&shard.byte_offset);
      r.Pod(&shard.byte_size);
      r.Pod(&shard.content_hash);
      if (!r.status().ok()) return std::nullopt;
      // The table must tile [0, rows) in order with chunks of at most
      // shard_rows rows — anything else is a corrupt or hand-tampered
      // layout that could alias shards onto the wrong row ranges.
      if (row_begin != expect_begin || row_end <= row_begin ||
          row_end - row_begin > shard_rows || row_end > spec.rows) {
        r.Fail("dataset shard " + std::to_string(i) +
               " does not tile the dataset's row range");
        return std::nullopt;
      }
      shard.row_begin = row_begin;
      shard.row_end = row_end;
      expect_begin = row_end;
      spec.shards.push_back(shard);
    }
    if (shard_count > 0 && expect_begin != spec.rows) {
      r.Fail("dataset shard table does not cover every row");
      return std::nullopt;
    }
  }
  return spec;
}

void WriteCandidateEdges(Writer& w,
                         const std::vector<std::pair<int, int>>& edges) {
  w.Pod<uint64_t>(edges.size());
  for (const auto& [from, to] : edges) {
    w.Pod<int32_t>(from);
    w.Pod<int32_t>(to);
  }
}

bool ReadCandidateEdges(Reader& r, std::vector<std::pair<int, int>>* out) {
  uint64_t count = 0;
  r.Pod(&count);
  if (!r.status().ok()) return false;
  constexpr size_t kEdgeBytes = 2 * sizeof(int32_t);
  if (count > r.remaining() / kEdgeBytes) {
    r.Fail("candidate edge list exceeds blob size");
    return false;
  }
  out->clear();
  out->reserve(static_cast<size_t>(count));
  for (uint64_t e = 0; e < count; ++e) {
    int32_t from = 0, to = 0;
    r.Pod(&from);
    r.Pod(&to);
    if (!r.status().ok()) return false;
    if (from < 0 || to < 0) {
      r.Fail("negative candidate edge endpoint");
      return false;
    }
    out->push_back({from, to});
  }
  return true;
}

}  // namespace

ModelArtifact ModelArtifact::FromOutcome(std::string name,
                                         Algorithm algorithm,
                                         const LearnOptions& options,
                                         const FitOutcome& outcome) {
  ModelArtifact artifact;
  artifact.name = std::move(name);
  artifact.algorithm = algorithm;
  artifact.options = options;
  artifact.sparse = outcome.sparse;
  if (outcome.sparse) {
    artifact.sparse_weights = outcome.sparse_weights;
    artifact.sparse_raw_weights = outcome.sparse_raw_weights;
  } else {
    artifact.weights = outcome.weights;
    artifact.raw_weights = outcome.raw_weights;
  }
  artifact.constraint_value = outcome.constraint_value;
  artifact.outer_iterations = outcome.outer_iterations;
  artifact.inner_iterations = outcome.inner_iterations;
  artifact.seconds = outcome.seconds;
  artifact.train_state = outcome.train_state;
  return artifact;
}

std::string SerializeModel(const ModelArtifact& artifact) {
  return SerializeModelForVersion(artifact, kModelFormatVersion);
}

std::string SerializeModelForVersion(const ModelArtifact& artifact,
                                     uint32_t version) {
  LEAST_CHECK(version >= kMinModelFormatVersion &&
              version <= kModelFormatVersion);
  LEAST_CHECK(version >= 2 || artifact.train_state == nullptr);
  LEAST_CHECK(version >= 3 || (!artifact.dataset.has_value() &&
                               artifact.candidate_edges.empty()));
  LEAST_CHECK(version >= 4 || !artifact.dataset.has_value() ||
              (artifact.dataset->shard_rows == 0 &&
               artifact.dataset->shards.empty()));
  LEAST_CHECK(version >= 5 || !artifact.dataset.has_value() ||
              artifact.dataset->kind != DatasetKind::kRemote);
  Writer body;
  body.Pod<uint8_t>(static_cast<uint8_t>(artifact.algorithm));
  body.Pod<uint8_t>(artifact.sparse ? 1 : 0);
  body.Str(artifact.name);
  WriteArchive options_archive{body};
  ArchiveOptions(options_archive, artifact.options);
  body.Pod<double>(artifact.constraint_value);
  body.Pod<int32_t>(artifact.outer_iterations);
  body.Pod<int64_t>(artifact.inner_iterations);
  body.Pod<double>(artifact.seconds);
  if (artifact.sparse) {
    WriteSparse(body, artifact.sparse_weights);
    WriteSparse(body, artifact.sparse_raw_weights);
  } else {
    WriteDense(body, artifact.weights);
    WriteDense(body, artifact.raw_weights);
  }
  if (version >= 2) {
    body.Pod<uint8_t>(artifact.train_state != nullptr ? 1 : 0);
    if (artifact.train_state != nullptr) {
      WriteTrainState(body, *artifact.train_state);
    }
  }
  if (version >= 3) {
    body.Pod<uint8_t>(artifact.dataset.has_value() ? 1 : 0);
    if (artifact.dataset.has_value()) {
      WriteDatasetSpec(body, *artifact.dataset, version);
    }
    WriteCandidateEdges(body, artifact.candidate_edges);
  }
  const std::string payload = std::move(body).Finish();

  Writer out;
  out.Raw(kMagic, sizeof kMagic);
  out.Pod<uint32_t>(version);
  out.Pod<uint64_t>(Fnv1a(payload));
  out.Raw(payload.data(), payload.size());
  return std::move(out).Finish();
}

Result<ModelArtifact> DeserializeModel(std::string_view bytes) {
  if (bytes.size() < kHeaderBytes) {
    return Status::InvalidArgument("model blob shorter than header");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return Status::InvalidArgument("bad magic: not a LEAST model blob");
  }
  uint32_t version = 0;
  uint64_t checksum = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof version);
  std::memcpy(&checksum, bytes.data() + 8, sizeof checksum);
  if (version < kMinModelFormatVersion || version > kModelFormatVersion) {
    return Status::InvalidArgument(
        "unsupported model format version " + std::to_string(version) +
        " (this reader supports versions " +
        std::to_string(kMinModelFormatVersion) + ".." +
        std::to_string(kModelFormatVersion) + ")");
  }
  const std::string_view payload = bytes.substr(kHeaderBytes);
  if (Fnv1a(payload) != checksum) {
    return Status::InvalidArgument("model blob checksum mismatch");
  }

  Reader r(payload);
  ModelArtifact artifact;
  uint8_t algorithm = 0, sparse = 0;
  r.Pod(&algorithm);
  r.Pod(&sparse);
  if (r.status().ok() && algorithm > static_cast<uint8_t>(Algorithm::kNotears)) {
    r.Fail("unknown algorithm id " + std::to_string(algorithm));
  }
  artifact.algorithm = static_cast<Algorithm>(algorithm);
  artifact.sparse = sparse != 0;
  r.Str(&artifact.name);
  ReadArchive options_archive{r};
  ArchiveOptions(options_archive, artifact.options);
  r.Pod(&artifact.constraint_value);
  int32_t outer = 0;
  r.Pod(&outer);
  artifact.outer_iterations = outer;
  int64_t inner = 0;
  r.Pod(&inner);
  artifact.inner_iterations = inner;
  r.Pod(&artifact.seconds);
  if (artifact.sparse) {
    artifact.sparse_weights = ReadSparse(r);
    artifact.sparse_raw_weights = ReadSparse(r);
  } else {
    artifact.weights = ReadDense(r);
    artifact.raw_weights = ReadDense(r);
  }
  if (version >= 2) {
    uint8_t has_state = 0;
    r.Pod(&has_state);
    if (r.status().ok() && has_state > 1) {
      r.Fail("train state marker is neither 0 nor 1");
    }
    if (r.status().ok() && has_state == 1) {
      artifact.train_state = ReadTrainState(r);
    }
  }
  if (version >= 3) {
    uint8_t has_dataset = 0;
    r.Pod(&has_dataset);
    if (r.status().ok() && has_dataset > 1) {
      r.Fail("dataset marker is neither 0 nor 1");
    }
    if (r.status().ok() && has_dataset == 1) {
      artifact.dataset = ReadDatasetSpec(r, version);
    }
    if (r.status().ok()) {
      ReadCandidateEdges(r, &artifact.candidate_edges);
    }
  }
  if (!r.status().ok()) return r.status();
  if (r.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after model payload");
  }
  return artifact;
}

Status SaveModel(const std::string& path, const ModelArtifact& artifact) {
  // Temp + rename: a crash mid-save leaves the previous complete file (or
  // nothing), never a torn checkpoint for ScanAndResume to trip over.
  return AtomicWriteFile(path, SerializeModel(artifact));
}

Result<ModelArtifact> LoadModel(const std::string& path) {
  LEAST_FAILPOINT("serializer.read");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::string blob;
  char buffer[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    blob.append(buffer, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError("read error on '" + path + "'");
  }
  return DeserializeModel(blob);
}

}  // namespace least
