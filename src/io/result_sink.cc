#include "io/result_sink.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace_log.h"
#include "util/atomic_file.h"
#include "util/failpoint.h"

namespace least {

namespace {

constexpr char kIndexHeader[] =
    "job_id\tname\talgorithm\tstate\tstatus\tattempts\tseed\tedges\tfile\t"
    "dataset_kind\tdataset_ref\tdataset_hash\n";

// Index cells are tab-separated: free-form labels must not smuggle
// separators or line breaks into the table.
std::string Sanitize(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

// Counts data rows in index content so model numbering continues across
// scheduler generations (the index is logically append-only).
int64_t CountDataLines(const std::string& content) {
  int64_t lines = 0;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++lines;
  }
  return lines > 0 ? lines - 1 : 0;  // minus the header line
}

}  // namespace

ResultSink::ResultSink(std::string dir, std::string index_content,
                       int64_t next_seq)
    : dir_(std::move(dir)),
      index_content_(std::move(index_content)),
      next_seq_(next_seq) {}

Result<std::unique_ptr<ResultSink>> ResultSink::Open(const std::string& dir) {
  const std::string index_path = IndexPath(dir);
  std::string content;
  std::ifstream in(index_path, std::ios::binary);
  if (in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) {
      return Status::IoError("cannot read '" + index_path + "'");
    }
    content = buf.str();
  }
  if (content.empty()) {
    content = kIndexHeader;
    // Materialize the header immediately so a fleet that settles no jobs
    // still leaves a readable (empty) index behind, matching the previous
    // open-in-append-mode behavior.
    LEAST_RETURN_IF_ERROR(AtomicWriteFile(index_path, content));
  }
  const int64_t existing = CountDataLines(content);
  return std::unique_ptr<ResultSink>(
      new ResultSink(dir, std::move(content), existing));
}

Status ResultSink::Write(const ResultRow& row, const ModelArtifact& artifact) {
  std::lock_guard<std::mutex> lock(mu_);
  LEAST_FAILPOINT("sink.write");
  const std::string file = "model-" + std::to_string(next_seq_) + ".lbnm";
  LEAST_RETURN_IF_ERROR(SaveModel(dir_ + "/" + file, artifact));

  long long edges = 0;
  if (artifact.sparse) {
    edges = artifact.sparse_weights.CountNonZeros();
  } else {
    edges = artifact.weights.CountNonZeros();
  }
  std::string dataset_kind = "-";
  std::string dataset_ref = "-";
  uint64_t dataset_hash = 0;
  if (artifact.dataset.has_value()) {
    dataset_kind = std::string(DatasetKindName(artifact.dataset->kind));
    dataset_ref = artifact.dataset->path.empty() ? artifact.dataset->name
                                                 : artifact.dataset->path;
    dataset_hash = artifact.dataset->content_hash;
  }
  constexpr char kRowFormat[] =
      "%lld\t%s\t%s\t%s\t%s\t%d\t%" PRIu64 "\t%lld\t%s\t%s\t%s\t%016" PRIx64
      "\n";
  const std::string name = Sanitize(artifact.name);
  const std::string algorithm(AlgorithmName(artifact.algorithm));
  const std::string state = Sanitize(row.state);
  const std::string status(StatusCodeToString(row.status));
  const std::string ref = Sanitize(dataset_ref);
  const int need = std::snprintf(
      nullptr, 0, kRowFormat, static_cast<long long>(row.job_id),
      name.c_str(), algorithm.c_str(), state.c_str(), status.c_str(),
      row.attempts, row.seed, edges, file.c_str(), dataset_kind.c_str(),
      ref.c_str(), dataset_hash);
  std::string index_row(static_cast<size_t>(need > 0 ? need : 0), '\0');
  if (need <= 0 ||
      std::snprintf(index_row.data(), index_row.size() + 1, kRowFormat,
                    static_cast<long long>(row.job_id), name.c_str(),
                    algorithm.c_str(), state.c_str(), status.c_str(),
                    row.attempts, row.seed, edges, file.c_str(),
                    dataset_kind.c_str(), ref.c_str(), dataset_hash) != need) {
    return Status::Internal("cannot format index row for job " +
                            std::to_string(row.job_id));
  }
  // Commit the row by atomically rewriting the whole index from the
  // in-memory copy: a reader or a crash sees the index before this row or
  // after it, never a torn line. On failure the on-disk index and the
  // in-memory copy both still lack the row, and the error propagates to the
  // caller instead of silently dropping the row.
  LEAST_FAILPOINT("sink.index");
  LEAST_RETURN_IF_ERROR(AtomicWriteFile(IndexPath(dir_),
                                        index_content_ + index_row));
  index_content_ += index_row;
  if (TraceEnabled()) {
    std::error_code ec;
    const auto blob_bytes =
        std::filesystem::file_size(dir_ + "/" + file, ec);
    TraceEmit(TraceEventKind::kSinkStream, row.job_id,
              ec ? 0 : static_cast<uint64_t>(blob_bytes),
              static_cast<uint64_t>(next_seq_));
  }
  static Counter& streamed =
      MetricsRegistry::Global().counter("sink.models_streamed");
  streamed.Add();
  ++next_seq_;
  ++written_;
  return Status::Ok();
}

int64_t ResultSink::written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return written_;
}

Result<std::vector<ResultIndexEntry>> ReadResultIndex(const std::string& dir) {
  const std::string path = ResultSink::IndexPath(dir);
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::vector<ResultIndexEntry> entries;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line_no == 1) continue;  // header
    std::vector<std::string> cells;
    std::istringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, '\t')) cells.push_back(cell);
    if (cells.size() != 12) {
      return Status::InvalidArgument("malformed index row at line " +
                                     std::to_string(line_no) + " in '" +
                                     path + "'");
    }
    ResultIndexEntry e;
    errno = 0;
    char* end = nullptr;
    e.job_id = std::strtoll(cells[0].c_str(), &end, 10);
    if (end == cells[0].c_str() || errno == ERANGE) {
      return Status::InvalidArgument("bad job id at line " +
                                     std::to_string(line_no) + " in '" +
                                     path + "'");
    }
    e.name = cells[1];
    e.algorithm = cells[2];
    e.state = cells[3];
    e.status = cells[4];
    e.attempts = std::atoi(cells[5].c_str());
    e.seed = std::strtoull(cells[6].c_str(), nullptr, 10);
    e.edges = std::strtoll(cells[7].c_str(), nullptr, 10);
    e.file = cells[8];
    e.dataset_kind = cells[9];
    e.dataset_ref = cells[10];
    e.dataset_hash = std::strtoull(cells[11].c_str(), nullptr, 16);
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace least
