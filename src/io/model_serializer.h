/// \file model_serializer.h
/// \brief Versioned binary persistence for learned BN models.
///
/// A fleet run that learns thousands of models is only a system if those
/// models survive the process: this layer round-trips a `ModelArtifact`
/// (weights — dense or CSR — plus the `LearnOptions` that produced them and
/// run metadata) to a checkpoint blob or file and back, bit-identically.
///
/// Format ("LBNM", version 5), all integers/doubles in native byte order:
///
///   [0..4)   magic "LBNM"
///   [4..8)   u32 format version
///   [8..16)  u64 FNV-1a checksum of the body
///   [16.. )  body: algorithm, weights kind, name, LearnOptions (every
///            field, declaration order), run metadata, weight payloads
///            (final + raw; dense = row-major f64, sparse = entry triplets)
///   v2+, appended after the weight payloads:
///            u8 has_train_state; when 1, a `TrainState` section —
///            u8 sparse kind, working W (dense payload or sparse triplets),
///            Adam moments (u64 count + f64 m[] + f64 v[] + i64 t),
///            ρ/η/prev-round-constraint f64s, loop position (i32 outer,
///            i32 inner_steps, f64 prev_objective, f64 last_loss,
///            f64 constraint_value, i64 total_inner), the trace
///            (u64 count + per-point fields), f64 elapsed seconds, and the
///            length-prefixed textual RNG state.
///   v3+, appended after the optimizer-state section:
///            u8 has_dataset; when 1, a `DatasetSpec` section — u8 kind,
///            length-prefixed name and path, i32 rows, i32 cols, u64
///            content hash, u8 csv_has_header — the dataset the job was
///            learning from, so a resumed fleet can re-attach (and verify)
///            its data; then u64 candidate-edge count + (i32 from, i32 to)
///            pairs, the sparse learner's injected pattern.
///   v4+, inside the dataset-spec section (after csv_has_header):
///            the shard layout — i32 shard_rows (0 = unsharded) and a u64
///            shard count followed by per-shard (i32 row_begin,
///            i32 row_end, u64 byte_offset, u64 byte_size,
///            u64 content_hash) entries. The table must tile [0, rows) in
///            order with chunks of at most shard_rows rows, so a resumed
///            fleet re-attaches a sharded dataset at the same granularity
///            and refuses a mutated file shard by shard.
///   v5: no new bytes — v5 widens the dataset-spec *value domain*: the
///            dataset kind may be `kRemote` (4), whose `path` is an origin
///            URL and whose shard table doubles as the HTTP `Range:`
///            request plan. Readers of v1-v4 blobs reject kind 4 (those
///            writers could never have produced it), so a tampered old
///            blob cannot smuggle a remote spec past an old-format check.
///
/// Version policy: the writer emits version 5 by default (versions 1-4 on
/// request via `SerializeModelForVersion`, for artifacts without the newer
/// sections). Readers accept versions 1 through 5 — a v1 blob simply has no
/// optimizer-state section, a v2 blob no dataset section, a v3 blob no
/// shard layout, a v4 blob no remote dataset kind — and reject anything
/// newer loudly instead of misparsing.
///
/// Error contract: any structural problem — wrong magic, short buffer,
/// truncated body, trailing bytes, checksum mismatch, or an unsupported
/// version — fails with `kInvalidArgument` and a precise message; only
/// filesystem failures map to `kIoError`. Checkpoints are an on-disk
/// contract: readers must never crash on corrupt input, so every read is
/// bounds-checked before it dereferences.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/data_source.h"
#include "core/learn_options.h"
#include "core/train_state.h"
#include "linalg/csr_matrix.h"
#include "runtime/learner_factory.h"
#include "util/status.h"

namespace least {

/// Current writer version. Readers accept `kMinModelFormatVersion` through
/// this version; older readers seeing a newer file fail loudly instead of
/// misparsing.
inline constexpr uint32_t kModelFormatVersion = 5;
/// Oldest version readers still accept (v1: no optimizer-state section;
/// v2: no dataset-spec / candidate-edge section; v3: no shard layout;
/// v4: no remote dataset kind).
inline constexpr uint32_t kMinModelFormatVersion = 1;

/// \brief A learned model plus everything needed to reproduce or resume it.
struct ModelArtifact {
  std::string name;  ///< free-form model/job label
  Algorithm algorithm = Algorithm::kLeastDense;
  LearnOptions options;  ///< hyper-parameters the run used (incl. seed)
  bool sparse = false;   ///< selects dense vs. sparse weight fields
  DenseMatrix weights;
  DenseMatrix raw_weights;  ///< pre-pruning W (re-prunable at other τ)
  CsrMatrix sparse_weights;
  CsrMatrix sparse_raw_weights;
  // Run metadata.
  double constraint_value = 0.0;
  int outer_iterations = 0;
  long long inner_iterations = 0;
  double seconds = 0.0;
  /// Mid-run optimizer state (v2 section). Null for completed runs and for
  /// v1 blobs; set when checkpointing a cancelled or in-flight job so the
  /// loaded artifact can `ResumeFit` bit-identically.
  std::shared_ptr<const TrainState> train_state;
  /// The dataset the model was learned from (v3 section; v4 adds the shard
  /// layout): kind + path/name + shape + content hash (+ per-shard row
  /// ranges, byte extents, and hashes for sharded CSV sources). Absent for
  /// v1/v2 blobs; when present, `FleetScheduler::ScanAndResume` uses it to
  /// re-attach (and verify) the data of an unfinished job.
  std::optional<DatasetSpec> dataset;
  /// The sparse learner's injected candidate pattern (v3 section; empty
  /// for dense algorithms and older blobs). Required for a faithful
  /// fresh restart of a sparse job.
  std::vector<std::pair<int, int>> candidate_edges;

  /// Builds an artifact from a fleet/factory outcome (weights are copied so
  /// the outcome remains usable; the train state, if any, is shared).
  static ModelArtifact FromOutcome(std::string name, Algorithm algorithm,
                                   const LearnOptions& options,
                                   const FitOutcome& outcome);
};

/// Serializes to an in-memory checkpoint blob (current format version).
std::string SerializeModel(const ModelArtifact& artifact);

/// Serializes targeting an explicit format version in
/// [`kMinModelFormatVersion`, `kModelFormatVersion`] — the back-compat seam
/// that keeps old readers loadable and lets tests cover every on-disk
/// layout. Version 1 cannot carry a train state, versions below 3 cannot
/// carry a dataset spec or candidate edges, versions below 4 cannot carry
/// a sharded dataset spec, and versions below 5 cannot carry a remote
/// (`kRemote`) dataset spec (checked).
std::string SerializeModelForVersion(const ModelArtifact& artifact,
                                     uint32_t version);

/// Parses a checkpoint blob. Structural errors → `kInvalidArgument` (see
/// file comment).
Result<ModelArtifact> DeserializeModel(std::string_view bytes);

/// Writes a checkpoint file (atomic-ish: fails with `kIoError` on any
/// filesystem error; partial files are possible only on IO failure).
Status SaveModel(const std::string& path, const ModelArtifact& artifact);

/// Reads a checkpoint file. Missing/unreadable file → `kIoError`; corrupt
/// contents → `kInvalidArgument`.
Result<ModelArtifact> LoadModel(const std::string& path);

}  // namespace least
