/// \file model_serializer.h
/// \brief Versioned binary persistence for learned BN models.
///
/// A fleet run that learns thousands of models is only a system if those
/// models survive the process: this layer round-trips a `ModelArtifact`
/// (weights — dense or CSR — plus the `LearnOptions` that produced them and
/// run metadata) to a checkpoint blob or file and back, bit-identically.
///
/// Format ("LBNM", version 1), all integers/doubles in native byte order:
///
///   [0..4)   magic "LBNM"
///   [4..8)   u32 format version
///   [8..16)  u64 FNV-1a checksum of the body
///   [16.. )  body: algorithm, weights kind, name, LearnOptions (every
///            field, declaration order), run metadata, weight payloads
///            (final + raw; dense = row-major f64, sparse = entry triplets)
///
/// Error contract: any structural problem — wrong magic, short buffer,
/// truncated body, trailing bytes, checksum mismatch, or an unsupported
/// version — fails with `kInvalidArgument` and a precise message; only
/// filesystem failures map to `kIoError`. Checkpoints are an on-disk
/// contract: readers must never crash on corrupt input, so every read is
/// bounds-checked before it dereferences.

#pragma once

#include <string>
#include <string_view>

#include "core/learn_options.h"
#include "linalg/csr_matrix.h"
#include "runtime/learner_factory.h"
#include "util/status.h"

namespace least {

/// Current writer version. Readers accept exactly this version; older
/// readers seeing a newer file fail loudly instead of misparsing.
inline constexpr uint32_t kModelFormatVersion = 1;

/// \brief A learned model plus everything needed to reproduce or resume it.
struct ModelArtifact {
  std::string name;  ///< free-form model/job label
  Algorithm algorithm = Algorithm::kLeastDense;
  LearnOptions options;  ///< hyper-parameters the run used (incl. seed)
  bool sparse = false;   ///< selects dense vs. sparse weight fields
  DenseMatrix weights;
  DenseMatrix raw_weights;  ///< pre-pruning W (re-prunable at other τ)
  CsrMatrix sparse_weights;
  CsrMatrix sparse_raw_weights;
  // Run metadata.
  double constraint_value = 0.0;
  int outer_iterations = 0;
  long long inner_iterations = 0;
  double seconds = 0.0;

  /// Builds an artifact from a fleet/factory outcome (weights are copied so
  /// the outcome remains usable).
  static ModelArtifact FromOutcome(std::string name, Algorithm algorithm,
                                   const LearnOptions& options,
                                   const FitOutcome& outcome);
};

/// Serializes to an in-memory checkpoint blob.
std::string SerializeModel(const ModelArtifact& artifact);

/// Parses a checkpoint blob. Structural errors → `kInvalidArgument` (see
/// file comment).
Result<ModelArtifact> DeserializeModel(std::string_view bytes);

/// Writes a checkpoint file (atomic-ish: fails with `kIoError` on any
/// filesystem error; partial files are possible only on IO failure).
Status SaveModel(const std::string& path, const ModelArtifact& artifact);

/// Reads a checkpoint file. Missing/unreadable file → `kIoError`; corrupt
/// contents → `kInvalidArgument`.
Result<ModelArtifact> LoadModel(const std::string& path);

}  // namespace least
