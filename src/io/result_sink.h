/// \file result_sink.h
/// \brief Streaming persistence for settled fleet jobs.
///
/// A fleet learning tens of thousands of BNs cannot keep every learned
/// model in RAM until `Wait()` returns. A `ResultSink` streams each settled
/// job's final model to a directory as it lands — one `model-<seq>.lbnm`
/// checkpoint per job plus one row in an append-only `index.tsv` — so the
/// scheduler can release the in-memory weights immediately
/// (`FleetOptions::keep_settled_outcomes = false`) and downstream tooling
/// can enumerate a fleet's output without loading any model.
///
/// `index.tsv` columns (tab-separated, one header line):
///   job_id  name  algorithm  state  status  attempts  seed  edges  file
///   dataset_kind  dataset_ref  dataset_hash
/// The file is append-only across scheduler generations: resuming a killed
/// fleet into the same directory appends its settled jobs after the rows
/// the previous run left behind. Physically each append rewrites the whole
/// index through `AtomicWriteFile` (the sink keeps the full content in
/// memory), so a reader — or a crash at any instant — sees either the index
/// before the row or after it, never a torn line.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/model_serializer.h"

namespace least {

/// \brief Summary of one settled job, written as an index row alongside its
/// model file (mirrors the scheduler's `JobRecord` without depending on it).
struct ResultRow {
  int64_t job_id = -1;
  std::string state;  ///< "succeeded" / "failed"
  StatusCode status = StatusCode::kOk;
  int attempts = 0;
  uint64_t seed = 0;
};

/// \brief One parsed `index.tsv` row.
struct ResultIndexEntry {
  int64_t job_id = -1;
  std::string name;
  std::string algorithm;
  std::string state;
  std::string status;
  int attempts = 0;
  uint64_t seed = 0;
  long long edges = 0;
  std::string file;  ///< model file name, relative to the sink directory
  std::string dataset_kind;
  std::string dataset_ref;  ///< dataset path (on-disk kinds) or name
  uint64_t dataset_hash = 0;
};

/// \brief Appends settled models + index rows to a directory. Thread-safe:
/// fleet worker threads write concurrently through one sink.
class ResultSink {
 public:
  /// Loads any existing `<dir>/index.tsv` (creating a fresh header if
  /// absent). The directory must exist. Model file numbering continues
  /// after any rows a previous generation already wrote.
  static Result<std::unique_ptr<ResultSink>> Open(const std::string& dir);

  ResultSink(const ResultSink&) = delete;
  ResultSink& operator=(const ResultSink&) = delete;

  /// Writes the artifact to the next `model-<seq>.lbnm` and commits its
  /// index row (both through `AtomicWriteFile`). On error the index on disk
  /// is unchanged and the Status carries the failing path — a dropped row
  /// is loud, never silent. Failpoints: `sink.write` before the model file,
  /// `sink.index` before the index rewrite.
  Status Write(const ResultRow& row, const ModelArtifact& artifact);

  const std::string& dir() const { return dir_; }
  static std::string IndexPath(const std::string& dir) {
    return dir + "/index.tsv";
  }

  /// Models written through this sink instance.
  int64_t written() const;

 private:
  ResultSink(std::string dir, std::string index_content, int64_t next_seq);

  std::string dir_;
  mutable std::mutex mu_;
  std::string index_content_;  ///< full index.tsv content, header included
  int64_t next_seq_ = 0;
  int64_t written_ = 0;
};

/// Parses `<dir>/index.tsv`. Missing file → `kIoError`; malformed rows →
/// `kInvalidArgument`.
Result<std::vector<ResultIndexEntry>> ReadResultIndex(const std::string& dir);

}  // namespace least
