#include "core/least.h"

#include "constraint/expm_trace.h"
#include "constraint/spectral_bound.h"

namespace least {

ContinuousLearner MakeLeastDenseLearner(const LearnOptions& options) {
  SpectralBoundOptions bound{.k = options.k, .alpha = options.alpha};
  return ContinuousLearner(std::make_unique<SpectralBoundConstraint>(bound),
                           options);
}

LearnResult FitLeastDense(const DenseMatrix& x, const LearnOptions& options) {
  return MakeLeastDenseLearner(options).Fit(x);
}

ContinuousLearner MakeNotearsLearner(const LearnOptions& options) {
  LearnOptions adjusted = options;
  // NOTEARS' constraint *is* h; tracking h separately would double the
  // O(d³) work for no information.
  adjusted.track_exact_h = false;
  adjusted.terminate_on_h = false;
  return ContinuousLearner(std::make_unique<ExpmTraceConstraint>(), adjusted);
}

LearnResult FitNotears(const DenseMatrix& x, const LearnOptions& options) {
  return MakeNotearsLearner(options).Fit(x);
}

}  // namespace least
