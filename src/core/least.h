/// \file least.h
/// \brief Public entry points for the LEAST structure learner (dense) and
/// the NOTEARS baseline.
///
/// Quickstart:
/// ```cpp
///   least::Rng rng(7);
///   least::DenseMatrix w_true =
///       least::RandomDagWeights(least::GraphType::kErdosRenyi, 20, 2, rng);
///   auto x = least::SampleLsem(w_true, 200, {}, rng).value();
///   least::LearnOptions opt;
///   least::LearnResult res = least::FitLeastDense(x, opt);
///   // res.weights is the learned DAG's weighted adjacency matrix.
/// ```
/// For graphs with ≥ thousands of nodes use the sparse learner in
/// `core/least_sparse.h` instead.

#pragma once

#include "core/continuous_learner.h"
#include "core/learn_options.h"

namespace least {

/// Runs LEAST (dense spectral-bound variant, the LEAST-TF analog) on an
/// n x d sample matrix.
LearnResult FitLeastDense(const DenseMatrix& x, const LearnOptions& options);

/// As above, but exposes the learner for snapshot callbacks.
ContinuousLearner MakeLeastDenseLearner(const LearnOptions& options);

/// Runs the NOTEARS baseline [38] (expm-trace constraint) under the same
/// augmented-Lagrangian harness.
LearnResult FitNotears(const DenseMatrix& x, const LearnOptions& options);

/// As above, but exposes the learner for snapshot callbacks.
ContinuousLearner MakeNotearsLearner(const LearnOptions& options);

}  // namespace least
