/// \file data_source.h
/// \brief Owning, self-describing dataset access for the fleet data plane.
///
/// A fleet job references a *dataset*, not a matrix. `DataSource` is the
/// abstraction behind that: it owns (or knows how to load) its samples,
/// describes itself with a `DatasetSpec` (kind + path/name + shape +
/// content hash — what checkpoints stamp so an interrupted fleet can
/// re-attach data on resume), and serves the three access shapes the
/// learners use:
///
///  * `Dense()` — the full n x d matrix (dense learners);
///  * `Csr()`   — sparse samples (e.g. mean-centered ratings);
///  * `GatherTransposed()` — transposed mini-batches for LEAST-SP, which
///    only ever touches B rows at a time (paper Fig. 3, INNER line 5): the
///    output's row v holds variable v's values over the batch, the layout
///    the pattern-restricted gradient kernel wants.
///
/// Ownership model: sources are shared (`std::shared_ptr<const DataSource>`)
/// so asynchronous fleet jobs can never dangle — the borrowed-pointer
/// adapters this file used to export are gone. In-memory sources
/// (`OwningDenseDataSource`, `OwningCsrDataSource`) hold their payload;
/// `CsvDataSource` is lazy: it loads from disk on first touch through a
/// fleet-wide `DatasetCache` with a byte budget and LRU eviction, and an
/// evicted dataset reloads bit-identically on the next touch, so a fleet of
/// thousands of CSV jobs never materializes every dataset in RAM at once.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"
#include "util/status.h"

namespace least {

/// \brief What kind of storage backs a dataset (stable on-disk ids — these
/// values are stamped into format-v3 model checkpoints).
enum class DatasetKind : uint8_t {
  kDense = 0,    ///< in-memory dense matrix
  kCsr = 1,      ///< in-memory CSR samples
  kCsv = 2,      ///< numeric CSV file on disk, loaded lazily
  kVirtual = 3,  ///< synthesized on demand (e.g. `StreamingLsemSource`)
  /// Numeric CSV served by a remote HTTP origin, fetched shard-by-shard
  /// with `Range:` requests (`net/http_data_source.h`). The spec's `path`
  /// holds the origin URL. Stamped only into format-v5+ checkpoints.
  kRemote = 4,
};

/// Canonical lowercase name ("dense", "csr", "csv", "virtual", "remote").
std::string_view DatasetKindName(DatasetKind kind);

/// \brief One row-range chunk of a sharded on-disk dataset: the logical row
/// range it covers, the byte extent of its data lines in the source file,
/// and an FNV-1a hash of its parsed values (see `HashShardContent`). The
/// layout is recorded in the spec (and stamped into format-v4 checkpoints)
/// so a resumed fleet can re-attach a sharded dataset and refuse a mutated
/// file shard by shard.
struct DatasetShard {
  int row_begin = 0;         ///< first logical data row (inclusive)
  int row_end = 0;           ///< one past the last logical data row
  uint64_t byte_offset = 0;  ///< file offset of the first data line
  uint64_t byte_size = 0;    ///< bytes through the end of the last data line
  uint64_t content_hash = 0; ///< FNV-1a over (row range, cols, values)
};

/// \brief Self-description of a dataset: enough to re-attach (for on-disk
/// kinds) or at least verify (shape + content hash) the data a checkpointed
/// job was learning from.
struct DatasetSpec {
  DatasetKind kind = DatasetKind::kDense;
  std::string name;  ///< free-form label (defaults to the kind / CSV path)
  std::string path;  ///< on-disk path for `kCsv`; empty for in-memory kinds
  int rows = 0;      ///< n (0 until a lazy source is prepared)
  int cols = 0;      ///< d (0 until a lazy source is prepared)
  /// FNV-1a content hash (see `HashDenseContent`/`HashCsrContent`); 0 means
  /// "not computed yet" and disables verification on re-attach. For sharded
  /// CSV sources this is the *whole-dataset* hash — identical to what the
  /// unsharded source reports for the same file, so sharding is invisible
  /// to spec comparison.
  uint64_t content_hash = 0;
  bool csv_has_header = false;  ///< only meaningful for `kCsv`
  /// Row-range residency granularity: 0 = unsharded (whole-dataset cache
  /// entries); > 0 = fixed row-chunk size, with one `shards` entry per
  /// chunk (the last may be partial). Only meaningful for `kCsv`.
  int shard_rows = 0;
  /// Per-chunk byte extents + hashes (empty iff `shard_rows == 0`; filled
  /// by `Prepare` for sharded sources).
  std::vector<DatasetShard> shards;
};

/// FNV-1a over shape + row-major values of a dense matrix.
uint64_t HashDenseContent(const DenseMatrix& x);
/// FNV-1a over shape + CSR arrays of a sparse matrix.
uint64_t HashCsrContent(const CsrMatrix& x);
/// FNV-1a over a shard's identity: (row_begin, row_end, cols) + the shard's
/// values row-major. What `DatasetShard::content_hash` records and what
/// every shard load is verified against.
uint64_t HashShardContent(int row_begin, int row_end, const DenseMatrix& x);

/// \brief Reusable scratch for shard-aware gathers. Callers that gather in
/// a loop (the sparse learner's batch loop) pass one in so the per-batch
/// shard grouping performs no steady-state heap allocations; passing
/// nullptr makes the source use a transient local. Unsharded sources ignore
/// it entirely.
struct GatherScratch {
  std::vector<int> bucket;  ///< per-shard counting-sort offsets
  std::vector<int> order;   ///< batch indices grouped by shard
};

/// \brief Abstract owning dataset.
///
/// Thread safety: all methods are const and safe to call concurrently.
/// Lifecycle: call `Prepare()` (idempotent) and check its status before any
/// other accessor — for lazy sources it performs the first disk load and
/// fills the spec's shape and content hash; for in-memory sources it is a
/// no-op. `num_rows`/`num_cols`/`GatherTransposed` are only meaningful
/// after a successful `Prepare`.
class DataSource {
 public:
  virtual ~DataSource() = default;

  /// Validates the dataset and (for lazy sources) performs the first-touch
  /// load, filling shape + content hash in `spec()`. Idempotent and cheap
  /// after the first success. Errors: `kIoError` (unreadable file) or
  /// `kInvalidArgument` (malformed/empty data) — never a crash.
  virtual Status Prepare() const = 0;

  /// Current self-description (copied; lazy sources complete it during
  /// `Prepare`, in-memory sources compute the content hash lazily on the
  /// first call). Always safe to call — before `Prepare` a lazy source
  /// reports its path/name with zero shape and hash.
  virtual DatasetSpec spec() const = 0;

  /// Number of samples n. Requires a successful `Prepare`. (Virtual so
  /// in-memory sources can answer without computing their content hash.)
  virtual int num_rows() const { return spec().rows; }
  /// Number of variables d. Requires a successful `Prepare`.
  virtual int num_cols() const { return spec().cols; }

  /// Full dense materialization, shared and immutable. Lazy sources route
  /// through their `DatasetCache`: hold the handle only as long as needed —
  /// a held handle keeps the bytes resident regardless of cache eviction.
  virtual Result<std::shared_ptr<const DenseMatrix>> Dense() const = 0;

  /// Sparse (CSR) materialization. Dense-backed sources convert on demand
  /// (O(n·d)); CSR-backed sources return their payload.
  virtual Result<std::shared_ptr<const CsrMatrix>> Csr() const = 0;

  /// Fills `out` (must be d x rows.size()) with out(v, b) = X(rows[b], v).
  /// Splits the batch across the optional global `ParallelExecutor` with
  /// bitwise-identical results (pure output-column partition). For lazy
  /// sources this re-acquires the dataset from the cache per call, so an
  /// eviction between batches is transparent (the reload is bit-identical);
  /// a failed reload surfaces here as a non-OK status. Sharded sources
  /// materialize only the row-range shards the batch touches, one at a
  /// time, so a dataset larger than its cache budget streams through.
  virtual Status GatherTransposed(std::span<const int> rows,
                                  DenseMatrix* out) const = 0;

  /// As above, with a caller-owned scratch so per-batch shard grouping does
  /// not allocate in steady state. The default forwards to the two-argument
  /// overload (in-memory sources need no grouping).
  virtual Status GatherTransposed(std::span<const int> rows, DenseMatrix* out,
                                  GatherScratch* scratch) const {
    (void)scratch;
    return GatherTransposed(rows, out);
  }

  /// Fraction of this dataset currently resident in cache, in [0, 1] — the
  /// cache-affinity signal the fleet scheduler's placement policy reads.
  /// In-memory sources are always "warm" (1.0). Lazy sources report what a
  /// touch right now would find without loading anything: 0 or 1 for
  /// whole-dataset residency, the resident-shard fraction for sharded mode,
  /// and 0 before `Prepare` (an unprepared source has loaded nothing, and
  /// probing must stay side-effect-free). Advisory only — the value may be
  /// stale by the time the job runs; correctness never depends on it.
  virtual double CacheResidency() const { return 1.0; }
};

/// \brief In-memory dense dataset, owning (or sharing) its matrix.
class OwningDenseDataSource final : public DataSource {
 public:
  /// Takes ownership of `x` by value.
  explicit OwningDenseDataSource(DenseMatrix x, std::string name = {});
  /// Shares an existing immutable matrix (must be non-null).
  explicit OwningDenseDataSource(std::shared_ptr<const DenseMatrix> x,
                                 std::string name = {});

  Status Prepare() const override { return Status::Ok(); }
  /// Computes the content hash on first call (synchronous uses of an
  /// in-memory source never pay the O(n·d) hash unless a spec is wanted).
  DatasetSpec spec() const override;
  int num_rows() const override { return x_->rows(); }
  int num_cols() const override { return x_->cols(); }
  Result<std::shared_ptr<const DenseMatrix>> Dense() const override {
    return x_;
  }
  Result<std::shared_ptr<const CsrMatrix>> Csr() const override;
  using DataSource::GatherTransposed;
  Status GatherTransposed(std::span<const int> rows,
                          DenseMatrix* out) const override;

 private:
  std::shared_ptr<const DenseMatrix> x_;
  DatasetSpec spec_;  ///< content_hash filled lazily under hash_once_
  mutable std::once_flag hash_once_;
  mutable uint64_t hash_ = 0;
};

/// \brief In-memory sparse dataset (e.g. mean-centered ratings where
/// unrated items are zero), owning (or sharing) its CSR matrix.
class OwningCsrDataSource final : public DataSource {
 public:
  explicit OwningCsrDataSource(CsrMatrix x, std::string name = {});
  explicit OwningCsrDataSource(std::shared_ptr<const CsrMatrix> x,
                               std::string name = {});

  Status Prepare() const override { return Status::Ok(); }
  /// Content hash computed on first call (see `OwningDenseDataSource`).
  DatasetSpec spec() const override;
  int num_rows() const override { return x_->rows(); }
  int num_cols() const override { return x_->cols(); }
  Result<std::shared_ptr<const DenseMatrix>> Dense() const override;
  Result<std::shared_ptr<const CsrMatrix>> Csr() const override { return x_; }
  using DataSource::GatherTransposed;
  Status GatherTransposed(std::span<const int> rows,
                          DenseMatrix* out) const override;

 private:
  std::shared_ptr<const CsrMatrix> x_;
  DatasetSpec spec_;  ///< content_hash filled lazily under hash_once_
  mutable std::once_flag hash_once_;
  mutable uint64_t hash_ = 0;
};

/// \brief Fleet-wide LRU cache of loaded datasets — or, for sharded
/// sources, of individual row-range shards — with a byte budget.
///
/// Lazy sources (`CsvDataSource`) load through a cache so a fleet of
/// thousands of disk-backed jobs keeps only its working set in RAM. The
/// cache hands out `shared_ptr` handles whose bytes stay *charged* against
/// the resident counter until the last handle dies — eviction drops the
/// cache's own reference (an unpinned dataset frees immediately; a dataset
/// pinned by a running job frees when that job releases it), so
/// `resident_bytes` is an honest account of dataset RAM, not just of what
/// the map holds. Admission evicts least-recently-used entries first until
/// `resident + incoming <= budget`; when everything else is pinned the new
/// dataset is still admitted (jobs must run), so the budget binds whenever
/// it exceeds the concurrently-pinned working set. A sharded dataset maps
/// to one entry per row-range shard, so eviction granularity is a shard:
/// one dataset larger than the whole budget can still stream through as
/// long as the budget admits a single shard.
///
/// Thread safety: all methods are safe to call concurrently. Loads are
/// single-flight *per key*: concurrent misses on the same key wait for the
/// one in-flight load (a file or shard is never parsed twice in parallel
/// and the budget is never overshot by duplicate payloads), while misses on
/// different keys load concurrently.
class DatasetCache {
 public:
  /// Default budget used by `GlobalDatasetCache` (256 MiB).
  static constexpr size_t kDefaultByteBudget = size_t{256} << 20;

  explicit DatasetCache(size_t byte_budget = kDefaultByteBudget);
  ~DatasetCache();

  DatasetCache(const DatasetCache&) = delete;
  DatasetCache& operator=(const DatasetCache&) = delete;

  /// Produces a dense matrix on a cache miss. May fail (IO, parse errors);
  /// failures are returned to the caller and nothing is cached.
  using Loader = std::function<Result<DenseMatrix>()>;

  /// Returns the cached dataset for `key`, invoking `loader` on a miss.
  /// The charged size of an entry is its payload bytes
  /// (`matrix.size() * sizeof(double)`).
  Result<std::shared_ptr<const DenseMatrix>> GetOrLoad(const std::string& key,
                                                       const Loader& loader);

  /// Drops every cached reference (pinned handles stay alive until their
  /// holders release them).
  void Clear();

  /// Drops the cache's reference for one key (counts as an eviction when a
  /// payload was cached, and always as a refusal). Sources call this when a
  /// loaded payload fails verification: a refused dataset must not keep
  /// charging the budget until LRU pressure happens to reach it.
  void Drop(const std::string& key);

  /// True when a `GetOrLoad(key, ...)` right now would hit: the entry is
  /// cached, or evicted-but-pinned (a live handle still holds the bytes).
  /// A pure probe for the scheduler's cache-affinity placement — no LRU
  /// bump, no hit/miss accounting, no load.
  bool Resident(const std::string& key) const;

  /// Adjusts the budget and evicts down to it.
  void set_byte_budget(size_t bytes);
  size_t byte_budget() const;

  struct Stats {
    size_t byte_budget = 0;
    size_t resident_bytes = 0;       ///< bytes alive via cache-issued handles
    size_t peak_resident_bytes = 0;  ///< high-water mark of the above
    int64_t hits = 0;
    int64_t misses = 0;    ///< lookups that found no usable entry
    int64_t loads = 0;     ///< loader invocations that succeeded
    int64_t evictions = 0; ///< cache references dropped to make room
    int64_t refusals = 0;  ///< loaded payloads dropped by verification
    int64_t entries = 0;   ///< keys currently tracked
  };
  Stats stats() const;
  size_t resident_bytes() const;

 private:
  // Shared with handle deleters so accounting survives cache destruction.
  struct Accounting {
    std::mutex mu;
    size_t resident = 0;
    size_t peak = 0;
  };
  struct Entry {
    std::shared_ptr<const DenseMatrix> cached;  ///< null once evicted
    std::weak_ptr<const DenseMatrix> alive;     ///< observes pinned handles
    size_t bytes = 0;
    uint64_t last_used = 0;
  };

  std::shared_ptr<const DenseMatrix> LookupLocked(const std::string& key);
  /// Drops LRU cache references until `resident + incoming <= budget` or
  /// nothing evictable remains. Requires `mu_`.
  void EvictForLocked(size_t incoming);

  mutable std::mutex mu_;   ///< guards entries_, inflight_, and counters
  /// Keys with a load in flight; misses on the same key wait on
  /// `inflight_cv_` instead of starting a duplicate load.
  std::set<std::string> inflight_;
  std::condition_variable inflight_cv_;
  std::shared_ptr<Accounting> accounting_;
  std::unordered_map<std::string, Entry> entries_;
  size_t byte_budget_;
  uint64_t tick_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t loads_ = 0;
  int64_t evictions_ = 0;
  int64_t refusals_ = 0;
};

/// The process-wide cache lazy sources use by default.
DatasetCache& GlobalDatasetCache();

/// \brief Options for `CsvDataSource` / `MakeCsvSource`.
struct CsvSourceOptions {
  bool has_header = true;
  std::string name;             ///< label; defaults to the path
  DatasetCache* cache = nullptr;  ///< defaults to `GlobalDatasetCache()`
  /// Expected shape/hash from a checkpointed `DatasetSpec`: when non-zero,
  /// `Prepare` fails with `kInvalidArgument` if the file on disk does not
  /// match (the file changed since the checkpoint was written).
  int expected_rows = 0;
  int expected_cols = 0;
  uint64_t expected_hash = 0;
  /// Row-range residency granularity: 0 = whole-dataset cache entries
  /// (the default); > 0 = chunked mode, where `Prepare` scans the file into
  /// fixed `shard_rows`-row shards and every access materializes only the
  /// shards it touches — a dataset larger than the cache budget streams
  /// through `GatherTransposed` without ever being held whole.
  int shard_rows = 0;
  /// Expected shard layout from a checkpointed `DatasetSpec` (requires a
  /// matching `shard_rows`). When non-empty, `Prepare` refuses a file whose
  /// scanned layout — row ranges or per-shard hashes — differs.
  std::vector<DatasetShard> expected_shards;
};

/// \brief Lazy numeric-CSV dataset: nothing is read until first touch, and
/// the payload lives in a `DatasetCache` (evictions reload bit-identically).
///
/// Robustness contract: malformed input — ragged rows, non-numeric or
/// non-finite cells, header/shape mismatches, empty files — surfaces as
/// `kInvalidArgument` from `Prepare` (or from a mid-run reload), never as a
/// crash. A reload whose content differs from the first load (file mutated
/// mid-run) is also refused, and the refused payload's cache reservation is
/// released (`DatasetCache::Drop`) instead of lingering charged.
///
/// Chunked mode (`CsvSourceOptions::shard_rows > 0`): `Prepare` scans the
/// file into fixed row-range shards (recording per-shard byte extents and
/// value hashes in the spec); each shard is its own cache entry, and
/// `GatherTransposed` pins exactly one shard at a time, so any cache budget
/// that admits a single shard streams a dataset of unbounded size with
/// bit-identical results to the all-in-RAM path.
class CsvDataSource final : public DataSource {
 public:
  explicit CsvDataSource(std::string path, CsvSourceOptions options = {});

  Status Prepare() const override;
  DatasetSpec spec() const override;
  /// Sharded sources assemble the full matrix shard by shard; the result is
  /// caller-owned (NOT budget-tracked) — dense learners genuinely need the
  /// whole matrix, and asking for it is an explicit opt-out of streaming.
  Result<std::shared_ptr<const DenseMatrix>> Dense() const override;
  Result<std::shared_ptr<const CsrMatrix>> Csr() const override;
  using DataSource::GatherTransposed;
  Status GatherTransposed(std::span<const int> rows,
                          DenseMatrix* out) const override;
  Status GatherTransposed(std::span<const int> rows, DenseMatrix* out,
                          GatherScratch* scratch) const override;
  /// Whole-dataset mode: 0 or 1. Sharded mode: resident shards / shards.
  /// 0 before `Prepare` (nothing has been loaded; probing loads nothing).
  double CacheResidency() const override;

 private:
  /// Parses + structurally validates the whole file (the unsharded cache
  /// loader).
  Result<DenseMatrix> Load() const;
  /// Parses + structurally validates one shard's byte extent (the sharded
  /// cache loader for shard `index`).
  Result<DenseMatrix> LoadShard(int index) const;
  /// Acquires the whole-dataset payload from the cache and verifies it
  /// against the expected/recorded shape + content hash. Verification runs
  /// whenever the underlying payload object changed since the last check
  /// (first touch, reload after eviction, or a different source
  /// repopulating the shared cache entry), so a cache *hit* on mutated
  /// content is refused too. Unsharded mode only.
  Result<std::shared_ptr<const DenseMatrix>> AcquireVerified() const;
  /// Sharded analog of `AcquireVerified` for one shard: acquisition through
  /// the cache plus payload-identity-gated verification against the
  /// recorded shard hash; a refused payload is dropped from the cache.
  Result<std::shared_ptr<const DenseMatrix>> AcquireShard(int index) const;
  /// First-touch scan for chunked mode: validates the file, fills the
  /// spec's shape, whole-content hash, and shard table, and verifies any
  /// expectations from a checkpointed spec.
  Status PrepareSharded() const;
  Status GatherSharded(std::span<const int> rows, DenseMatrix* out,
                       GatherScratch* scratch) const;
  std::string ShardKey(int index) const;

  DatasetCache* cache_;
  std::string cache_key_;  ///< path + parse options (header flag + sharding)
  const int shard_rows_;   ///< 0 = whole-dataset residency
  std::vector<DatasetShard> expected_shards_;  ///< from a checkpointed spec
  mutable std::mutex mu_;  // guards spec_ shape/hash/shards, prepared_,
                           // verified_, verified_shards_
  mutable DatasetSpec spec_;
  mutable bool prepared_ = false;
  mutable std::weak_ptr<const DenseMatrix> verified_;
  mutable std::vector<std::weak_ptr<const DenseMatrix>> verified_shards_;
};

// ------------------------------------------------- shard-plane utilities ---
//
// The row-range shard machinery is shared between the local `CsvDataSource`
// and the remote `HttpDataSource` (`net/http_data_source.h`): both scan (or
// receive) the same shard layout, parse shard byte extents with the same
// cell-exact parser, and gather batches with the same counting-sort
// one-shard-pinned-at-a-time loop — so a remote dataset streams
// bit-identically to the local file it was exported from.

/// \brief Outcome of scanning a CSV file into fixed row-range shards.
struct CsvShardScan {
  int rows = 0;
  int cols = 0;
  /// Whole-dataset hash, identical to `HashDenseContent` of the fully
  /// materialized matrix (the row-major value stream is the concatenation
  /// of the shard value streams).
  uint64_t content_hash = 0;
  std::vector<DatasetShard> shards;
};

/// Two-pass bounded-memory scan of a CSV file into fixed `shard_rows`-row
/// shards: pass one establishes structure (shape, raggedness, byte
/// extents), pass two folds per-shard value hashes plus the whole-dataset
/// hash one shard at a time. The scan behind `CsvDataSource`'s chunked mode
/// and the manifest the fleet service serves to remote readers.
Result<CsvShardScan> ScanCsvIntoShards(const std::string& path,
                                       bool has_header, int shard_rows);

/// Parses the data lines of one shard's byte extent (however it was
/// obtained — local read or HTTP `Range:` response body) into an
/// `expect_rows` x `cols` matrix. Every cell goes through the same
/// `SplitCsvLine`/`ParseCsvCells` pair as `ReadCsv`, so a value parsed from
/// a shard is bit-identical to the whole-file parse. Any structural
/// surprise — ragged/extra/missing lines — is `kInvalidArgument` (the
/// origin changed since it was scanned). `origin` only feeds messages.
Result<DenseMatrix> ParseCsvShardBuffer(const std::string& buffer,
                                        const std::string& origin,
                                        int expect_rows, int cols);

/// The shard-granular gather loop shared by every sharded source: counting-
/// sorts `rows` by shard (via `scratch`, allocation-free in steady state;
/// nullptr uses a transient local), then materializes each touched shard
/// exactly once through `acquire_shard` and copies its columns into `out`
/// as a pure output partition (bitwise identical at any thread count). The
/// shard handle is released before the next shard is acquired, so peak
/// residency is one shard above whatever the cache retains.
Status GatherFromShards(
    std::span<const int> rows, DenseMatrix* out, GatherScratch* scratch,
    int total_rows, int cols, int shard_rows, int num_shards,
    const std::function<Result<std::shared_ptr<const DenseMatrix>>(int)>&
        acquire_shard);

/// \brief Factory `AttachDataset` uses for `kRemote` specs, so the core
/// data plane can re-attach remote datasets without depending on the net
/// layer. Installed by `InstallHttpDataPlane()` (`net/http_data_source.h`);
/// nullptr (the default) makes re-attaching a remote spec fail with a
/// message naming the installer.
using RemoteSourceFactory = Result<std::shared_ptr<const DataSource>> (*)(
    const DatasetSpec& spec, DatasetCache* cache);
void SetRemoteSourceFactory(RemoteSourceFactory factory);
RemoteSourceFactory GetRemoteSourceFactory();

// ------------------------------------------------------------- factories ---

/// Wraps an in-memory dense matrix into a shareable source.
std::shared_ptr<DataSource> MakeDenseSource(DenseMatrix x,
                                            std::string name = {});
std::shared_ptr<DataSource> MakeDenseSource(
    std::shared_ptr<const DenseMatrix> x, std::string name = {});

/// Wraps in-memory CSR samples into a shareable source.
std::shared_ptr<DataSource> MakeCsrSource(CsrMatrix x, std::string name = {});
std::shared_ptr<DataSource> MakeCsrSource(std::shared_ptr<const CsrMatrix> x,
                                          std::string name = {});

/// Lazy CSV-backed source (see `CsvDataSource`).
std::shared_ptr<DataSource> MakeCsvSource(std::string path,
                                          CsvSourceOptions options = {});

/// Writes a dense matrix as a numeric CSV with round-trip-exact value
/// precision — the write-side inverse of `CsvDataSource`, shared by tests
/// and benches that materialize disk-backed datasets.
Status WriteMatrixCsv(const std::string& path, const DenseMatrix& x,
                      const std::vector<std::string>& header = {});

/// Re-attaches the dataset described by a checkpointed spec. `kCsv` specs
/// re-attach from the spec alone (shape and hash are verified on load when
/// recorded; a sharded spec re-attaches in chunked mode and additionally
/// verifies every shard's row range and value hash, so a file mutated since
/// the checkpoint is refused shard by shard). `kRemote` specs re-attach
/// through the installed `RemoteSourceFactory` (call
/// `InstallHttpDataPlane()` first) with the same verification rules against
/// the origin. In-memory kinds fail with `kInvalidArgument` — supply them
/// through a resolver (see `FleetScheduler::ScanAndResume`).
Result<std::shared_ptr<const DataSource>> AttachDataset(
    const DatasetSpec& spec, DatasetCache* cache = nullptr);

}  // namespace least
