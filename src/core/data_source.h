/// \file data_source.h
/// \brief Batch access to training data for the sparse learner.
///
/// LEAST-SP only ever touches mini-batches of rows (paper Fig. 3, INNER
/// line 5), so the full sample matrix never needs to exist densely. A
/// `DataSource` serves transposed batches: `GatherTransposed` fills a
/// (d x B) matrix whose row v holds variable v's values over the batch —
/// the layout the pattern-restricted gradient kernel wants (contiguous
/// per-variable vectors).

#pragma once

#include <span>

#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"

namespace least {

/// \brief Abstract provider of transposed row batches.
class DataSource {
 public:
  virtual ~DataSource() = default;

  /// Number of samples n.
  virtual int num_rows() const = 0;
  /// Number of variables d.
  virtual int num_cols() const = 0;

  /// Fills `out` (must be d x rows.size()) with out(v, b) = X(rows[b], v).
  virtual void GatherTransposed(std::span<const int> rows,
                                DenseMatrix* out) const = 0;
};

/// \brief Adapter over an in-memory dense matrix (borrowed, not owned).
class DenseDataSource final : public DataSource {
 public:
  explicit DenseDataSource(const DenseMatrix* x) : x_(x) {
    LEAST_CHECK(x != nullptr);
  }
  int num_rows() const override { return x_->rows(); }
  int num_cols() const override { return x_->cols(); }
  void GatherTransposed(std::span<const int> rows,
                        DenseMatrix* out) const override;

 private:
  const DenseMatrix* x_;
};

/// \brief Adapter over sparse samples (e.g. mean-centered ratings where
/// unrated items are zero). Borrowed, not owned.
class CsrDataSource final : public DataSource {
 public:
  explicit CsrDataSource(const CsrMatrix* x) : x_(x) {
    LEAST_CHECK(x != nullptr);
  }
  int num_rows() const override { return x_->rows(); }
  int num_cols() const override { return x_->cols(); }
  void GatherTransposed(std::span<const int> rows,
                        DenseMatrix* out) const override;

 private:
  const CsrMatrix* x_;
};

}  // namespace least
