/// \file data_source.h
/// \brief Owning, self-describing dataset access for the fleet data plane.
///
/// A fleet job references a *dataset*, not a matrix. `DataSource` is the
/// abstraction behind that: it owns (or knows how to load) its samples,
/// describes itself with a `DatasetSpec` (kind + path/name + shape +
/// content hash — what checkpoints stamp so an interrupted fleet can
/// re-attach data on resume), and serves the three access shapes the
/// learners use:
///
///  * `Dense()` — the full n x d matrix (dense learners);
///  * `Csr()`   — sparse samples (e.g. mean-centered ratings);
///  * `GatherTransposed()` — transposed mini-batches for LEAST-SP, which
///    only ever touches B rows at a time (paper Fig. 3, INNER line 5): the
///    output's row v holds variable v's values over the batch, the layout
///    the pattern-restricted gradient kernel wants.
///
/// Ownership model: sources are shared (`std::shared_ptr<const DataSource>`)
/// so asynchronous fleet jobs can never dangle — the borrowed-pointer
/// adapters this file used to export are gone. In-memory sources
/// (`OwningDenseDataSource`, `OwningCsrDataSource`) hold their payload;
/// `CsvDataSource` is lazy: it loads from disk on first touch through a
/// fleet-wide `DatasetCache` with a byte budget and LRU eviction, and an
/// evicted dataset reloads bit-identically on the next touch, so a fleet of
/// thousands of CSV jobs never materializes every dataset in RAM at once.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"
#include "util/status.h"

namespace least {

/// \brief What kind of storage backs a dataset (stable on-disk ids — these
/// values are stamped into format-v3 model checkpoints).
enum class DatasetKind : uint8_t {
  kDense = 0,    ///< in-memory dense matrix
  kCsr = 1,      ///< in-memory CSR samples
  kCsv = 2,      ///< numeric CSV file on disk, loaded lazily
  kVirtual = 3,  ///< synthesized on demand (e.g. `StreamingLsemSource`)
};

/// Canonical lowercase name ("dense", "csr", "csv", "virtual").
std::string_view DatasetKindName(DatasetKind kind);

/// \brief Self-description of a dataset: enough to re-attach (for on-disk
/// kinds) or at least verify (shape + content hash) the data a checkpointed
/// job was learning from.
struct DatasetSpec {
  DatasetKind kind = DatasetKind::kDense;
  std::string name;  ///< free-form label (defaults to the kind / CSV path)
  std::string path;  ///< on-disk path for `kCsv`; empty for in-memory kinds
  int rows = 0;      ///< n (0 until a lazy source is prepared)
  int cols = 0;      ///< d (0 until a lazy source is prepared)
  /// FNV-1a content hash (see `HashDenseContent`/`HashCsrContent`); 0 means
  /// "not computed yet" and disables verification on re-attach.
  uint64_t content_hash = 0;
  bool csv_has_header = false;  ///< only meaningful for `kCsv`
};

/// FNV-1a over shape + row-major values of a dense matrix.
uint64_t HashDenseContent(const DenseMatrix& x);
/// FNV-1a over shape + CSR arrays of a sparse matrix.
uint64_t HashCsrContent(const CsrMatrix& x);

/// \brief Abstract owning dataset.
///
/// Thread safety: all methods are const and safe to call concurrently.
/// Lifecycle: call `Prepare()` (idempotent) and check its status before any
/// other accessor — for lazy sources it performs the first disk load and
/// fills the spec's shape and content hash; for in-memory sources it is a
/// no-op. `num_rows`/`num_cols`/`GatherTransposed` are only meaningful
/// after a successful `Prepare`.
class DataSource {
 public:
  virtual ~DataSource() = default;

  /// Validates the dataset and (for lazy sources) performs the first-touch
  /// load, filling shape + content hash in `spec()`. Idempotent and cheap
  /// after the first success. Errors: `kIoError` (unreadable file) or
  /// `kInvalidArgument` (malformed/empty data) — never a crash.
  virtual Status Prepare() const = 0;

  /// Current self-description (copied; lazy sources complete it during
  /// `Prepare`, in-memory sources compute the content hash lazily on the
  /// first call). Always safe to call — before `Prepare` a lazy source
  /// reports its path/name with zero shape and hash.
  virtual DatasetSpec spec() const = 0;

  /// Number of samples n. Requires a successful `Prepare`. (Virtual so
  /// in-memory sources can answer without computing their content hash.)
  virtual int num_rows() const { return spec().rows; }
  /// Number of variables d. Requires a successful `Prepare`.
  virtual int num_cols() const { return spec().cols; }

  /// Full dense materialization, shared and immutable. Lazy sources route
  /// through their `DatasetCache`: hold the handle only as long as needed —
  /// a held handle keeps the bytes resident regardless of cache eviction.
  virtual Result<std::shared_ptr<const DenseMatrix>> Dense() const = 0;

  /// Sparse (CSR) materialization. Dense-backed sources convert on demand
  /// (O(n·d)); CSR-backed sources return their payload.
  virtual Result<std::shared_ptr<const CsrMatrix>> Csr() const = 0;

  /// Fills `out` (must be d x rows.size()) with out(v, b) = X(rows[b], v).
  /// Splits the batch across the optional global `ParallelExecutor` with
  /// bitwise-identical results (pure output-column partition). For lazy
  /// sources this re-acquires the dataset from the cache per call, so an
  /// eviction between batches is transparent (the reload is bit-identical);
  /// a failed reload surfaces here as a non-OK status.
  virtual Status GatherTransposed(std::span<const int> rows,
                                  DenseMatrix* out) const = 0;
};

/// \brief In-memory dense dataset, owning (or sharing) its matrix.
class OwningDenseDataSource final : public DataSource {
 public:
  /// Takes ownership of `x` by value.
  explicit OwningDenseDataSource(DenseMatrix x, std::string name = {});
  /// Shares an existing immutable matrix (must be non-null).
  explicit OwningDenseDataSource(std::shared_ptr<const DenseMatrix> x,
                                 std::string name = {});

  Status Prepare() const override { return Status::Ok(); }
  /// Computes the content hash on first call (synchronous uses of an
  /// in-memory source never pay the O(n·d) hash unless a spec is wanted).
  DatasetSpec spec() const override;
  int num_rows() const override { return x_->rows(); }
  int num_cols() const override { return x_->cols(); }
  Result<std::shared_ptr<const DenseMatrix>> Dense() const override {
    return x_;
  }
  Result<std::shared_ptr<const CsrMatrix>> Csr() const override;
  Status GatherTransposed(std::span<const int> rows,
                          DenseMatrix* out) const override;

 private:
  std::shared_ptr<const DenseMatrix> x_;
  DatasetSpec spec_;  ///< content_hash filled lazily under hash_once_
  mutable std::once_flag hash_once_;
  mutable uint64_t hash_ = 0;
};

/// \brief In-memory sparse dataset (e.g. mean-centered ratings where
/// unrated items are zero), owning (or sharing) its CSR matrix.
class OwningCsrDataSource final : public DataSource {
 public:
  explicit OwningCsrDataSource(CsrMatrix x, std::string name = {});
  explicit OwningCsrDataSource(std::shared_ptr<const CsrMatrix> x,
                               std::string name = {});

  Status Prepare() const override { return Status::Ok(); }
  /// Content hash computed on first call (see `OwningDenseDataSource`).
  DatasetSpec spec() const override;
  int num_rows() const override { return x_->rows(); }
  int num_cols() const override { return x_->cols(); }
  Result<std::shared_ptr<const DenseMatrix>> Dense() const override;
  Result<std::shared_ptr<const CsrMatrix>> Csr() const override { return x_; }
  Status GatherTransposed(std::span<const int> rows,
                          DenseMatrix* out) const override;

 private:
  std::shared_ptr<const CsrMatrix> x_;
  DatasetSpec spec_;  ///< content_hash filled lazily under hash_once_
  mutable std::once_flag hash_once_;
  mutable uint64_t hash_ = 0;
};

/// \brief Fleet-wide LRU cache of loaded datasets with a byte budget.
///
/// Lazy sources (`CsvDataSource`) load through a cache so a fleet of
/// thousands of disk-backed jobs keeps only its working set in RAM. The
/// cache hands out `shared_ptr` handles whose bytes stay *charged* against
/// the resident counter until the last handle dies — eviction drops the
/// cache's own reference (an unpinned dataset frees immediately; a dataset
/// pinned by a running job frees when that job releases it), so
/// `resident_bytes` is an honest account of dataset RAM, not just of what
/// the map holds. Admission evicts least-recently-used entries first until
/// `resident + incoming <= budget`; when everything else is pinned the new
/// dataset is still admitted (jobs must run), so the budget binds whenever
/// it exceeds the concurrently-pinned working set.
///
/// Thread safety: all methods are safe to call concurrently. Loads are
/// single-flight: concurrent misses serialize, so one file is never parsed
/// twice in parallel and the budget is never overshot by duplicate loads.
class DatasetCache {
 public:
  /// Default budget used by `GlobalDatasetCache` (256 MiB).
  static constexpr size_t kDefaultByteBudget = size_t{256} << 20;

  explicit DatasetCache(size_t byte_budget = kDefaultByteBudget);
  ~DatasetCache();

  DatasetCache(const DatasetCache&) = delete;
  DatasetCache& operator=(const DatasetCache&) = delete;

  /// Produces a dense matrix on a cache miss. May fail (IO, parse errors);
  /// failures are returned to the caller and nothing is cached.
  using Loader = std::function<Result<DenseMatrix>()>;

  /// Returns the cached dataset for `key`, invoking `loader` on a miss.
  /// The charged size of an entry is its payload bytes
  /// (`matrix.size() * sizeof(double)`).
  Result<std::shared_ptr<const DenseMatrix>> GetOrLoad(const std::string& key,
                                                       const Loader& loader);

  /// Drops every cached reference (pinned handles stay alive until their
  /// holders release them).
  void Clear();

  /// Adjusts the budget and evicts down to it.
  void set_byte_budget(size_t bytes);
  size_t byte_budget() const;

  struct Stats {
    size_t byte_budget = 0;
    size_t resident_bytes = 0;       ///< bytes alive via cache-issued handles
    size_t peak_resident_bytes = 0;  ///< high-water mark of the above
    int64_t hits = 0;
    int64_t misses = 0;    ///< loads performed (first touches + reloads)
    int64_t evictions = 0; ///< cache references dropped to make room
    int64_t entries = 0;   ///< keys currently tracked
  };
  Stats stats() const;
  size_t resident_bytes() const;

 private:
  // Shared with handle deleters so accounting survives cache destruction.
  struct Accounting {
    std::mutex mu;
    size_t resident = 0;
    size_t peak = 0;
  };
  struct Entry {
    std::shared_ptr<const DenseMatrix> cached;  ///< null once evicted
    std::weak_ptr<const DenseMatrix> alive;     ///< observes pinned handles
    size_t bytes = 0;
    uint64_t last_used = 0;
  };

  std::shared_ptr<const DenseMatrix> LookupLocked(const std::string& key);
  /// Drops LRU cache references until `resident + incoming <= budget` or
  /// nothing evictable remains. Requires `mu_`.
  void EvictForLocked(size_t incoming);

  mutable std::mutex mu_;   ///< guards entries_ and counters
  std::mutex load_mu_;      ///< single-flight for misses
  std::shared_ptr<Accounting> accounting_;
  std::unordered_map<std::string, Entry> entries_;
  size_t byte_budget_;
  uint64_t tick_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

/// The process-wide cache lazy sources use by default.
DatasetCache& GlobalDatasetCache();

/// \brief Options for `CsvDataSource` / `MakeCsvSource`.
struct CsvSourceOptions {
  bool has_header = true;
  std::string name;             ///< label; defaults to the path
  DatasetCache* cache = nullptr;  ///< defaults to `GlobalDatasetCache()`
  /// Expected shape/hash from a checkpointed `DatasetSpec`: when non-zero,
  /// `Prepare` fails with `kInvalidArgument` if the file on disk does not
  /// match (the file changed since the checkpoint was written).
  int expected_rows = 0;
  int expected_cols = 0;
  uint64_t expected_hash = 0;
};

/// \brief Lazy numeric-CSV dataset: nothing is read until first touch, and
/// the payload lives in a `DatasetCache` (evictions reload bit-identically).
///
/// Robustness contract: malformed input — ragged rows, non-numeric or
/// non-finite cells, header/shape mismatches, empty files — surfaces as
/// `kInvalidArgument` from `Prepare` (or from a mid-run reload), never as a
/// crash. A reload whose content differs from the first load (file mutated
/// mid-run) is also refused.
class CsvDataSource final : public DataSource {
 public:
  explicit CsvDataSource(std::string path, CsvSourceOptions options = {});

  Status Prepare() const override;
  DatasetSpec spec() const override;
  Result<std::shared_ptr<const DenseMatrix>> Dense() const override;
  Result<std::shared_ptr<const CsrMatrix>> Csr() const override;
  Status GatherTransposed(std::span<const int> rows,
                          DenseMatrix* out) const override;

 private:
  /// Parses + structurally validates the file (the cache loader).
  Result<DenseMatrix> Load() const;
  /// Acquires the payload from the cache and verifies it against the
  /// expected/recorded shape + content hash. Verification runs whenever the
  /// underlying payload object changed since the last check (first touch,
  /// reload after eviction, or a different source repopulating the shared
  /// cache entry), so a cache *hit* on mutated content is refused too.
  Result<std::shared_ptr<const DenseMatrix>> AcquireVerified() const;

  DatasetCache* cache_;
  std::string cache_key_;  ///< path + parse options (header flag)
  mutable std::mutex mu_;  // guards spec_ shape/hash, prepared_, verified_
  mutable DatasetSpec spec_;
  mutable bool prepared_ = false;
  mutable std::weak_ptr<const DenseMatrix> verified_;
};

// ------------------------------------------------------------- factories ---

/// Wraps an in-memory dense matrix into a shareable source.
std::shared_ptr<DataSource> MakeDenseSource(DenseMatrix x,
                                            std::string name = {});
std::shared_ptr<DataSource> MakeDenseSource(
    std::shared_ptr<const DenseMatrix> x, std::string name = {});

/// Wraps in-memory CSR samples into a shareable source.
std::shared_ptr<DataSource> MakeCsrSource(CsrMatrix x, std::string name = {});
std::shared_ptr<DataSource> MakeCsrSource(std::shared_ptr<const CsrMatrix> x,
                                          std::string name = {});

/// Lazy CSV-backed source (see `CsvDataSource`).
std::shared_ptr<DataSource> MakeCsvSource(std::string path,
                                          CsvSourceOptions options = {});

/// Re-attaches the dataset described by a checkpointed spec. Today only
/// `kCsv` specs are re-attachable from the spec alone (shape and hash are
/// verified on load when recorded); in-memory kinds fail with
/// `kInvalidArgument` — supply them through a resolver (see
/// `FleetScheduler::ScanAndResume`).
Result<std::shared_ptr<const DataSource>> AttachDataset(
    const DatasetSpec& spec, DatasetCache* cache = nullptr);

}  // namespace least
