#include "core/data_source.h"

namespace least {

void DenseDataSource::GatherTransposed(std::span<const int> rows,
                                       DenseMatrix* out) const {
  LEAST_CHECK(out != nullptr);
  const int batch = static_cast<int>(rows.size());
  LEAST_CHECK(out->rows() == x_->cols() && out->cols() == batch);
  for (int b = 0; b < batch; ++b) {
    const int r = rows[b];
    LEAST_DCHECK(r >= 0 && r < x_->rows());
    const double* src = x_->row(r);
    for (int v = 0; v < x_->cols(); ++v) {
      (*out)(v, b) = src[v];
    }
  }
}

void CsrDataSource::GatherTransposed(std::span<const int> rows,
                                     DenseMatrix* out) const {
  LEAST_CHECK(out != nullptr);
  const int batch = static_cast<int>(rows.size());
  LEAST_CHECK(out->rows() == x_->cols() && out->cols() == batch);
  out->Fill(0.0);
  for (int b = 0; b < batch; ++b) {
    const int r = rows[b];
    LEAST_DCHECK(r >= 0 && r < x_->rows());
    for (int64_t e = x_->row_ptr()[r]; e < x_->row_ptr()[r + 1]; ++e) {
      (*out)(x_->col_idx()[e], b) = x_->values()[e];
    }
  }
}

}  // namespace least
