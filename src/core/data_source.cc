#include "core/data_source.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <utility>

#include "linalg/parallel.h"
#include "obs/metrics.h"
#include "obs/trace_log.h"
#include "util/csv.h"
#include "util/failpoint.h"
#include "util/fnv.h"

namespace least {

namespace {

/// Trace events carry the FNV-1a of the cache key instead of the key itself
/// (records are fixed-size); `lbtrace_dump` correlates hit/load/evict chains
/// by this hash.
uint64_t CacheKeyHash(const std::string& key) { return Fnv1a(key); }

/// Process-wide cache metrics, aggregated across every `DatasetCache`
/// instance (per-instance exact numbers live in `DatasetCache::stats`).
struct CacheMetrics {
  Counter& hits = MetricsRegistry::Global().counter("cache.hits");
  Counter& misses = MetricsRegistry::Global().counter("cache.misses");
  Counter& loads = MetricsRegistry::Global().counter("cache.loads");
  Counter& evictions = MetricsRegistry::Global().counter("cache.evictions");
  Counter& refusals = MetricsRegistry::Global().counter("cache.refusals");
  Gauge& resident = MetricsRegistry::Global().gauge("cache.resident_bytes");

  static CacheMetrics& Get() {
    static CacheMetrics* m = new CacheMetrics();  // never destroyed
    return *m;
  }
};

void GatherFromDense(const DenseMatrix& x, std::span<const int> rows,
                     DenseMatrix* out) {
  LEAST_CHECK(out != nullptr);
  const int batch = static_cast<int>(rows.size());
  const int d = x.cols();
  LEAST_CHECK(out->rows() == d && out->cols() == batch);
  const int64_t flops = static_cast<int64_t>(batch) * d;
  MaybeParallelForFlops(flops, 0, batch, /*grain=*/-1,
                        [&](int64_t b_lo, int64_t b_hi) {
    for (int64_t b = b_lo; b < b_hi; ++b) {
      const int r = rows[static_cast<size_t>(b)];
      LEAST_DCHECK(r >= 0 && r < x.rows());
      const double* src = x.row(r);
      for (int v = 0; v < d; ++v) {
        (*out)(v, static_cast<int>(b)) = src[v];
      }
    }
  });
}

void GatherFromCsr(const CsrMatrix& x, std::span<const int> rows,
                   DenseMatrix* out) {
  LEAST_CHECK(out != nullptr);
  const int batch = static_cast<int>(rows.size());
  LEAST_CHECK(out->rows() == x.cols() && out->cols() == batch);
  out->Fill(0.0);
  const int64_t avg_row_nnz =
      x.rows() > 0 ? std::max<int64_t>(1, x.nnz() / x.rows()) : 1;
  const int64_t flops = static_cast<int64_t>(batch) * avg_row_nnz;
  MaybeParallelForFlops(flops, 0, batch, /*grain=*/-1,
                        [&](int64_t b_lo, int64_t b_hi) {
    for (int64_t b = b_lo; b < b_hi; ++b) {
      const int r = rows[static_cast<size_t>(b)];
      LEAST_DCHECK(r >= 0 && r < x.rows());
      for (int64_t e = x.row_ptr()[r]; e < x.row_ptr()[r + 1]; ++e) {
        (*out)(x.col_idx()[e], static_cast<int>(b)) = x.values()[e];
      }
    }
  });
}

// ----------------------------------------------------- CSV shard scanning ---

/// Reads one shard's byte extent from an already-open stream (seeks, so
/// extents need not be contiguous — blank lines between shards belong to
/// neither). A short read means the file shrank since it was scanned.
Status ReadShardBytes(std::ifstream& in, const std::string& path,
                      uint64_t byte_offset, uint64_t byte_size,
                      std::string* buffer) {
  buffer->assign(static_cast<size_t>(byte_size), '\0');
  in.clear();
  in.seekg(static_cast<std::streamoff>(byte_offset));
  in.read(buffer->data(), static_cast<std::streamsize>(byte_size));
  if (static_cast<uint64_t>(in.gcount()) != byte_size) {
    return Status::InvalidArgument(
        "CSV dataset '" + path +
        "' is shorter than its recorded shard extents (file changed)");
  }
  return Status::Ok();
}

}  // namespace

Result<DenseMatrix> ParseCsvShardBuffer(const std::string& buffer,
                                        const std::string& path,
                                        int expect_rows, int cols) {
  DenseMatrix x(expect_rows, cols);
  std::vector<std::string> cells;
  std::vector<double> row;
  int filled = 0;
  size_t pos = 0;
  size_t line_no = 0;
  while (pos < buffer.size()) {
    size_t eol = buffer.find('\n', pos);
    if (eol == std::string::npos) eol = buffer.size();
    std::string line = buffer.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    cells = SplitCsvLine(line);
    if (filled >= expect_rows ||
        cells.size() != static_cast<size_t>(cols)) {
      return Status::InvalidArgument(
          "CSV dataset '" + path +
          "' shard layout mismatch at shard-relative line " +
          std::to_string(line_no) + " (file changed)");
    }
    const Status parsed = ParseCsvCells(cells, line_no, path, &row);
    if (!parsed.ok()) return parsed;
    std::memcpy(x.row(filled), row.data(),
                static_cast<size_t>(cols) * sizeof(double));
    ++filled;
  }
  if (filled != expect_rows) {
    return Status::InvalidArgument(
        "CSV dataset '" + path + "' shard holds " + std::to_string(filled) +
        " rows where " + std::to_string(expect_rows) +
        " were recorded (file changed)");
  }
  return x;
}

namespace {

/// Self-contained open + read + parse of one shard (the cache loader).
Result<DenseMatrix> ParseShardExtent(const std::string& path,
                                     uint64_t byte_offset, uint64_t byte_size,
                                     int expect_rows, int cols) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::string buffer;
  const Status read = ReadShardBytes(in, path, byte_offset, byte_size, &buffer);
  if (!read.ok()) return read;
  return ParseCsvShardBuffer(buffer, path, expect_rows, cols);
}

}  // namespace

Result<CsvShardScan> ScanCsvIntoShards(const std::string& path,
                                       bool has_header, int shard_rows) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  CsvShardScan scan;
  uint64_t offset = 0;
  std::string line;
  size_t expected_cols = 0;
  bool first = true;
  size_t line_no = 0;
  int data_rows = 0;
  while (std::getline(in, line)) {
    const uint64_t line_begin = offset;
    // getline consumed line.size() chars plus one '\n' — except when it
    // stopped at EOF (a final unterminated line), where eofbit is set. The
    // '\r' of a CRLF line stays in `line` here (stripped below), so offsets
    // are exact for CRLF and missing-trailing-newline files alike.
    offset += static_cast<uint64_t>(line.size()) + (in.eof() ? 0 : 1);
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const size_t cells = SplitCsvLine(line).size();
    if (first && has_header) {
      expected_cols = cells;
      first = false;
      continue;
    }
    if (first) {
      expected_cols = cells;
      first = false;
    } else if (cells != expected_cols) {
      return Status::InvalidArgument(
          "ragged CSV row at line " + std::to_string(line_no) + " in '" +
          path + "'");
    }
    if (data_rows % shard_rows == 0) {
      DatasetShard shard;
      shard.row_begin = data_rows;
      shard.byte_offset = line_begin;
      scan.shards.push_back(shard);
    }
    DatasetShard& shard = scan.shards.back();
    shard.row_end = data_rows + 1;
    shard.byte_size = offset - shard.byte_offset;
    ++data_rows;
  }
  if (data_rows == 0) {
    return Status::InvalidArgument("CSV dataset '" + path +
                                   "' contains no data rows");
  }
  if (expected_cols == 0) {
    return Status::InvalidArgument("CSV dataset '" + path +
                                   "' has zero columns");
  }
  scan.rows = data_rows;
  scan.cols = static_cast<int>(expected_cols);
  // Pass two: value hashes. The whole-dataset chain is exactly
  // `HashDenseContent`'s — (rows, cols, then all values row-major) — folded
  // one shard at a time, streaming through a single reopened handle (one
  // seek per shard, not one open: a large dataset has many shards).
  std::ifstream values_in(path, std::ios::binary);
  if (!values_in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  uint64_t whole = kFnv1aOffset;
  whole = Fnv1aFold(whole, static_cast<uint64_t>(scan.rows));
  whole = Fnv1aFold(whole, static_cast<uint64_t>(scan.cols));
  std::string buffer;
  for (DatasetShard& shard : scan.shards) {
    const Status read = ReadShardBytes(values_in, path, shard.byte_offset,
                                       shard.byte_size, &buffer);
    if (!read.ok()) return read;
    Result<DenseMatrix> values = ParseCsvShardBuffer(
        buffer, path, shard.row_end - shard.row_begin, scan.cols);
    if (!values.ok()) return values.status();
    const DenseMatrix& x = values.value();
    shard.content_hash = HashShardContent(shard.row_begin, shard.row_end, x);
    whole = Fnv1aFold(whole, x.data().data(), x.size() * sizeof(double));
  }
  scan.content_hash = whole;
  return scan;
}

Status GatherFromShards(
    std::span<const int> rows, DenseMatrix* out, GatherScratch* scratch,
    int total_rows, int cols, int shard_rows, int num_shards,
    const std::function<Result<std::shared_ptr<const DenseMatrix>>(int)>&
        acquire_shard) {
  const int batch = static_cast<int>(rows.size());
  LEAST_CHECK(out != nullptr && out->rows() == cols && out->cols() == batch);
  LEAST_CHECK(shard_rows > 0 && num_shards > 0);
  GatherScratch local;
  if (scratch == nullptr) scratch = &local;
  // Counting sort of batch indices by shard, so each shard is materialized
  // exactly once per batch and pinned only while its columns are copied —
  // peak residency is one shard above whatever the cache retains.
  std::vector<int>& bucket = scratch->bucket;
  std::vector<int>& order = scratch->order;
  bucket.assign(static_cast<size_t>(num_shards) + 1, 0);
  for (int b = 0; b < batch; ++b) {
    const int r = rows[static_cast<size_t>(b)];
    // Hard check (not DCHECK): an out-of-range row would make the counting
    // sort below *write* past bucket's end in release builds — a heap
    // corruption, unlike the bounded garbage read of the in-memory gathers.
    LEAST_CHECK(r >= 0 && r < total_rows);
    ++bucket[static_cast<size_t>(r / shard_rows) + 1];
  }
  for (int s = 0; s < num_shards; ++s) bucket[s + 1] += bucket[s];
  order.resize(static_cast<size_t>(batch));
  for (int b = 0; b < batch; ++b) {
    order[static_cast<size_t>(
        bucket[rows[static_cast<size_t>(b)] / shard_rows]++)] = b;
  }
  // bucket[s] is now the end offset of shard s's group.
  for (int s = 0; s < num_shards; ++s) {
    const int begin = s == 0 ? 0 : bucket[s - 1];
    const int end = bucket[s];
    if (begin == end) continue;
    Result<std::shared_ptr<const DenseMatrix>> shard = acquire_shard(s);
    if (!shard.ok()) return shard.status();
    const DenseMatrix& m = *shard.value();
    const int* group = order.data() + begin;
    const int count = end - begin;
    const int64_t flops = static_cast<int64_t>(count) * cols;
    // Pure output-column partition (each column written by exactly one
    // chunk, values copied verbatim): bitwise identical at any thread
    // count, with or without an executor.
    MaybeParallelForFlops(flops, 0, count, /*grain=*/-1,
                          [&](int64_t g_lo, int64_t g_hi) {
      for (int64_t g = g_lo; g < g_hi; ++g) {
        const int b = group[g];
        const double* src =
            m.row(rows[static_cast<size_t>(b)] - s * shard_rows);
        for (int v = 0; v < cols; ++v) (*out)(v, b) = src[v];
      }
    });
    // The shard handle dies here, so the next admission may evict it: any
    // budget that admits one shard streams a dataset of unbounded size.
  }
  return Status::Ok();
}

std::string_view DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kDense:
      return "dense";
    case DatasetKind::kCsr:
      return "csr";
    case DatasetKind::kCsv:
      return "csv";
    case DatasetKind::kVirtual:
      return "virtual";
    case DatasetKind::kRemote:
      return "remote";
  }
  return "unknown";
}

uint64_t HashDenseContent(const DenseMatrix& x) {
  uint64_t hash = kFnv1aOffset;
  hash = Fnv1aFold(hash, static_cast<uint64_t>(x.rows()));
  hash = Fnv1aFold(hash, static_cast<uint64_t>(x.cols()));
  return Fnv1aFold(hash, x.data().data(), x.size() * sizeof(double));
}

uint64_t HashCsrContent(const CsrMatrix& x) {
  uint64_t hash = kFnv1aOffset;
  hash = Fnv1aFold(hash, static_cast<uint64_t>(x.rows()));
  hash = Fnv1aFold(hash, static_cast<uint64_t>(x.cols()));
  hash = Fnv1aFold(hash, static_cast<uint64_t>(x.nnz()));
  hash = Fnv1aFold(hash, x.row_ptr().data(),
                   x.row_ptr().size() * sizeof(int64_t));
  hash = Fnv1aFold(hash, x.col_idx().data(), x.col_idx().size() * sizeof(int));
  return Fnv1aFold(hash, x.values().data(),
                   x.values().size() * sizeof(double));
}

uint64_t HashShardContent(int row_begin, int row_end, const DenseMatrix& x) {
  uint64_t hash = kFnv1aOffset;
  hash = Fnv1aFold(hash, static_cast<uint64_t>(row_begin));
  hash = Fnv1aFold(hash, static_cast<uint64_t>(row_end));
  hash = Fnv1aFold(hash, static_cast<uint64_t>(x.cols()));
  return Fnv1aFold(hash, x.data().data(), x.size() * sizeof(double));
}

// ------------------------------------------------ OwningDenseDataSource ---

OwningDenseDataSource::OwningDenseDataSource(DenseMatrix x, std::string name)
    : OwningDenseDataSource(
          std::make_shared<const DenseMatrix>(std::move(x)), std::move(name)) {}

OwningDenseDataSource::OwningDenseDataSource(
    std::shared_ptr<const DenseMatrix> x, std::string name)
    : x_(std::move(x)) {
  LEAST_CHECK(x_ != nullptr);
  spec_.kind = DatasetKind::kDense;
  spec_.name = name.empty() ? std::string(DatasetKindName(spec_.kind))
                            : std::move(name);
  spec_.rows = x_->rows();
  spec_.cols = x_->cols();
}

DatasetSpec OwningDenseDataSource::spec() const {
  std::call_once(hash_once_, [this]() { hash_ = HashDenseContent(*x_); });
  DatasetSpec spec = spec_;
  spec.content_hash = hash_;
  return spec;
}

Result<std::shared_ptr<const CsrMatrix>> OwningDenseDataSource::Csr() const {
  return std::make_shared<const CsrMatrix>(CsrMatrix::FromDense(*x_));
}

Status OwningDenseDataSource::GatherTransposed(std::span<const int> rows,
                                               DenseMatrix* out) const {
  GatherFromDense(*x_, rows, out);
  return Status::Ok();
}

// -------------------------------------------------- OwningCsrDataSource ---

OwningCsrDataSource::OwningCsrDataSource(CsrMatrix x, std::string name)
    : OwningCsrDataSource(std::make_shared<const CsrMatrix>(std::move(x)),
                          std::move(name)) {}

OwningCsrDataSource::OwningCsrDataSource(std::shared_ptr<const CsrMatrix> x,
                                         std::string name)
    : x_(std::move(x)) {
  LEAST_CHECK(x_ != nullptr);
  spec_.kind = DatasetKind::kCsr;
  spec_.name = name.empty() ? std::string(DatasetKindName(spec_.kind))
                            : std::move(name);
  spec_.rows = x_->rows();
  spec_.cols = x_->cols();
}

DatasetSpec OwningCsrDataSource::spec() const {
  std::call_once(hash_once_, [this]() { hash_ = HashCsrContent(*x_); });
  DatasetSpec spec = spec_;
  spec.content_hash = hash_;
  return spec;
}

Result<std::shared_ptr<const DenseMatrix>> OwningCsrDataSource::Dense() const {
  return std::make_shared<const DenseMatrix>(x_->ToDense());
}

Status OwningCsrDataSource::GatherTransposed(std::span<const int> rows,
                                             DenseMatrix* out) const {
  GatherFromCsr(*x_, rows, out);
  return Status::Ok();
}

// ------------------------------------------------------------ DatasetCache ---

DatasetCache::DatasetCache(size_t byte_budget)
    : accounting_(std::make_shared<Accounting>()), byte_budget_(byte_budget) {}

DatasetCache::~DatasetCache() = default;

std::shared_ptr<const DenseMatrix> DatasetCache::LookupLocked(
    const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  if (it->second.cached != nullptr) {
    it->second.last_used = ++tick_;
    return it->second.cached;
  }
  // Evicted but possibly still pinned by a running job: re-promote (the
  // bytes are already charged, so this never changes residency).
  if (auto handle = it->second.alive.lock()) {
    it->second.cached = handle;
    it->second.last_used = ++tick_;
    return handle;
  }
  entries_.erase(it);  // fully released since eviction
  return nullptr;
}

void DatasetCache::EvictForLocked(size_t incoming) {
  while (true) {
    size_t resident = 0;
    {
      std::lock_guard<std::mutex> alock(accounting_->mu);
      resident = accounting_->resident;
    }
    if (resident + incoming <= byte_budget_) return;
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.cached == nullptr) continue;
      if (victim == entries_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything left is pinned
    TraceEmit(TraceEventKind::kCacheEvict, -1, victim->second.bytes,
              CacheKeyHash(victim->first));
    CacheMetrics::Get().evictions.Add();
    victim->second.cached.reset();  // may free inline when unpinned
    ++evictions_;
    if (victim->second.alive.expired()) entries_.erase(victim);
  }
}

Result<std::shared_ptr<const DenseMatrix>> DatasetCache::GetOrLoad(
    const std::string& key, const Loader& loader) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (auto handle = LookupLocked(key)) {
      ++hits_;
      TraceEmit(TraceEventKind::kCacheHit, -1,
                handle->size() * sizeof(double), CacheKeyHash(key));
      CacheMetrics::Get().hits.Add();
      return handle;
    }
    // Single-flight per key: claim the load, or wait for whoever owns it
    // and re-check (their load may have failed, in which case we claim).
    // Misses on *different* keys — e.g. distinct shards of one dataset, or
    // distinct fleet datasets — load concurrently.
    if (inflight_.insert(key).second) break;
    inflight_cv_.wait(lock);
  }
  // A miss is a lookup that found nothing usable — counted at claim time,
  // whether or not the load then succeeds (a failing loader is still a
  // miss; `loads` counts the successes).
  ++misses_;
  lock.unlock();
  TraceEmit(TraceEventKind::kCacheMiss, -1, 0, CacheKeyHash(key));
  CacheMetrics::Get().misses.Add();
  // The in-flight claim must be released even if the loader throws (e.g.
  // bad_alloc materializing a large shard) — a leaked key would deadlock
  // every future miss on it.
  Result<DenseMatrix> loaded = Status::Internal("loader did not run");
  try {
    // The fault stands in for the loader failing (disk hiccup, transient
    // I/O): the single-flight claim is released on the normal failure path
    // below, and a later attempt on the same key loads for real.
    Status fault = Status::Ok();
    if (FailpointsArmed()) fault = FailpointHit("cache.load");
    loaded = fault.ok() ? loader() : Result<DenseMatrix>(fault);
  } catch (...) {
    lock.lock();
    inflight_.erase(key);
    inflight_cv_.notify_all();
    throw;
  }
  lock.lock();
  inflight_.erase(key);
  inflight_cv_.notify_all();
  if (!loaded.ok()) return loaded.status();
  DenseMatrix matrix = std::move(loaded).value();
  const size_t bytes = matrix.size() * sizeof(double);

  EvictForLocked(bytes);  // make room before charging the newcomer
  std::shared_ptr<Accounting> acct = accounting_;
  auto* raw = new DenseMatrix(std::move(matrix));
  std::shared_ptr<const DenseMatrix> handle(
      raw, [acct, bytes](const DenseMatrix* p) {
        delete p;
        std::lock_guard<std::mutex> alock(acct->mu);
        acct->resident -= bytes;
      });
  size_t resident_after = 0;
  {
    std::lock_guard<std::mutex> alock(acct->mu);
    acct->resident += bytes;
    acct->peak = std::max(acct->peak, acct->resident);
    resident_after = acct->resident;
  }
  Entry& entry = entries_[key];
  entry.cached = handle;
  entry.alive = handle;
  entry.bytes = bytes;
  entry.last_used = ++tick_;
  ++loads_;
  TraceEmit(TraceEventKind::kCacheLoad, -1, bytes, resident_after);
  CacheMetrics& metrics = CacheMetrics::Get();
  metrics.loads.Add();
  metrics.resident.Set(static_cast<int64_t>(resident_after));
  return handle;
}

void DatasetCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : entries_) {
    if (entry.cached != nullptr) {
      entry.cached.reset();
      ++evictions_;
    }
  }
  entries_.clear();
}

void DatasetCache::Drop(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  // Drop is the verification-refusal path, so every call counts as a
  // refusal even when the payload was already evicted by LRU pressure.
  ++refusals_;
  TraceEmit(TraceEventKind::kCacheRefuse, -1, 0, CacheKeyHash(key));
  CacheMetrics::Get().refusals.Add();
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  if (it->second.cached != nullptr) {
    it->second.cached.reset();
    ++evictions_;
    CacheMetrics::Get().evictions.Add();
  }
  if (it->second.alive.expired()) entries_.erase(it);
}

bool DatasetCache::Resident(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  // Mirrors LookupLocked's "would this hit?" logic without its side
  // effects: no LRU bump, no re-promotion, no erase of a dead entry —
  // affinity probing must never perturb eviction order.
  return it->second.cached != nullptr || !it->second.alive.expired();
}

void DatasetCache::set_byte_budget(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  byte_budget_ = bytes;
  EvictForLocked(0);
}

size_t DatasetCache::byte_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return byte_budget_;
}

DatasetCache::Stats DatasetCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.byte_budget = byte_budget_;
  {
    std::lock_guard<std::mutex> alock(accounting_->mu);
    s.resident_bytes = accounting_->resident;
    s.peak_resident_bytes = accounting_->peak;
  }
  s.hits = hits_;
  s.misses = misses_;
  s.loads = loads_;
  s.evictions = evictions_;
  s.refusals = refusals_;
  s.entries = static_cast<int64_t>(entries_.size());
  return s;
}

size_t DatasetCache::resident_bytes() const {
  std::lock_guard<std::mutex> alock(accounting_->mu);
  return accounting_->resident;
}

DatasetCache& GlobalDatasetCache() {
  static DatasetCache* cache = new DatasetCache();
  return *cache;
}

// ----------------------------------------------------------- CsvDataSource ---

CsvDataSource::CsvDataSource(std::string path, CsvSourceOptions options)
    : cache_(options.cache != nullptr ? options.cache
                                      : &GlobalDatasetCache()),
      shard_rows_(options.shard_rows),
      expected_shards_(std::move(options.expected_shards)) {
  LEAST_CHECK(!path.empty());
  LEAST_CHECK(shard_rows_ >= 0);
  LEAST_CHECK(expected_shards_.empty() || shard_rows_ > 0);
  spec_.kind = DatasetKind::kCsv;
  spec_.path = std::move(path);
  spec_.name = options.name.empty() ? spec_.path : std::move(options.name);
  spec_.csv_has_header = options.has_header;
  spec_.rows = options.expected_rows;
  spec_.cols = options.expected_cols;
  spec_.content_hash = options.expected_hash;
  spec_.shard_rows = shard_rows_;
  // Parse options are part of the payload identity: two sources reading
  // the same file with and without a header (or with different shard
  // geometry) must not share cache entries.
  cache_key_ = spec_.path + (options.has_header ? "#header" : "#noheader");
  if (shard_rows_ > 0) cache_key_ += "#rows" + std::to_string(shard_rows_);
}

std::string CsvDataSource::ShardKey(int index) const {
  return cache_key_ + "#shard" + std::to_string(index);
}

Result<DenseMatrix> CsvDataSource::Load() const {
  bool has_header = false;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    has_header = spec_.csv_has_header;
    path = spec_.path;
  }
  Result<CsvTable> table = ReadCsv(path, has_header);
  if (!table.ok()) return table.status();
  const auto& rows = table.value().rows;
  if (rows.empty()) {
    return Status::InvalidArgument("CSV dataset '" + path +
                                   "' contains no data rows");
  }
  const int n = static_cast<int>(rows.size());
  const int d = static_cast<int>(rows[0].size());
  if (d == 0) {
    return Status::InvalidArgument("CSV dataset '" + path +
                                   "' has zero columns");
  }
  DenseMatrix x(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) x(i, j) = rows[i][j];
  }
  return x;
}

Result<std::shared_ptr<const DenseMatrix>> CsvDataSource::AcquireVerified()
    const {
  Result<std::shared_ptr<const DenseMatrix>> acquired =
      cache_->GetOrLoad(cache_key_, [this]() { return Load(); });
  if (!acquired.ok()) return acquired;
  // Transient acquire fault: the payload stays cached (no Drop — the data
  // is fine), so a retrying caller succeeds on the next attempt.
  LEAST_FAILPOINT("cache.verify");
  const std::shared_ptr<const DenseMatrix>& handle = acquired.value();
  std::lock_guard<std::mutex> lock(mu_);
  if (handle == verified_.lock()) return acquired;  // same payload object
  // The payload changed since we last checked — first touch, a reload
  // after eviction, or another source repopulating the shared entry.
  // Expectations (from a checkpointed spec) and the shape/hash recorded at
  // first touch must match: a file mutated mid-run would silently corrupt
  // a deterministic fleet, so refuse it instead. This runs on cache hits
  // of unseen payload objects too, never on the per-batch fast path.
  const int n = handle->rows();
  const int d = handle->cols();
  if ((spec_.rows != 0 && spec_.rows != n) ||
      (spec_.cols != 0 && spec_.cols != d)) {
    // Release the refused payload's cache reservation: a dataset no job can
    // use must not stay charged against the budget until LRU pressure
    // happens to evict it.
    cache_->Drop(cache_key_);
    return Status::InvalidArgument(
        "CSV dataset '" + spec_.path + "' is " + std::to_string(n) + "x" +
        std::to_string(d) + " but " + std::to_string(spec_.rows) + "x" +
        std::to_string(spec_.cols) + " was expected");
  }
  const uint64_t hash = HashDenseContent(*handle);
  if (spec_.content_hash != 0 && spec_.content_hash != hash) {
    cache_->Drop(cache_key_);
    return Status::InvalidArgument(
        "CSV dataset '" + spec_.path +
        "' content hash mismatch (file changed since it was recorded)");
  }
  spec_.rows = n;
  spec_.cols = d;
  spec_.content_hash = hash;
  verified_ = handle;
  return acquired;
}

Status CsvDataSource::PrepareSharded() const {
  std::string path;
  bool has_header = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (prepared_) return Status::Ok();
    path = spec_.path;
    has_header = spec_.csv_has_header;
  }
  Result<CsvShardScan> scanned =
      ScanCsvIntoShards(path, has_header, shard_rows_);
  if (!scanned.ok()) return scanned.status();
  const CsvShardScan& scan = scanned.value();
  std::lock_guard<std::mutex> lock(mu_);
  if (prepared_) return Status::Ok();  // a racing Prepare finished first
  if ((spec_.rows != 0 && spec_.rows != scan.rows) ||
      (spec_.cols != 0 && spec_.cols != scan.cols)) {
    return Status::InvalidArgument(
        "CSV dataset '" + spec_.path + "' is " + std::to_string(scan.rows) +
        "x" + std::to_string(scan.cols) + " but " +
        std::to_string(spec_.rows) + "x" + std::to_string(spec_.cols) +
        " was expected");
  }
  if (spec_.content_hash != 0 && spec_.content_hash != scan.content_hash) {
    return Status::InvalidArgument(
        "CSV dataset '" + spec_.path +
        "' content hash mismatch (file changed since it was recorded)");
  }
  // A checkpointed shard layout is verified by *content* — row ranges and
  // value hashes. Byte extents are a local materialization detail (a
  // rewrite that parses to identical doubles is the same dataset), so the
  // fresh scan's extents are authoritative.
  if (!expected_shards_.empty()) {
    if (expected_shards_.size() != scan.shards.size()) {
      return Status::InvalidArgument(
          "CSV dataset '" + spec_.path + "' scans into " +
          std::to_string(scan.shards.size()) + " shards where " +
          std::to_string(expected_shards_.size()) +
          " were recorded (file changed since the checkpoint)");
    }
    for (size_t i = 0; i < expected_shards_.size(); ++i) {
      const DatasetShard& want = expected_shards_[i];
      const DatasetShard& got = scan.shards[i];
      if (want.row_begin != got.row_begin || want.row_end != got.row_end ||
          (want.content_hash != 0 &&
           want.content_hash != got.content_hash)) {
        return Status::InvalidArgument(
            "CSV dataset '" + spec_.path + "' shard " + std::to_string(i) +
            " does not match its recorded layout (file changed since the "
            "checkpoint)");
      }
    }
  }
  spec_.rows = scan.rows;
  spec_.cols = scan.cols;
  spec_.content_hash = scan.content_hash;
  spec_.shards = scan.shards;
  verified_shards_.assign(scan.shards.size(),
                          std::weak_ptr<const DenseMatrix>());
  prepared_ = true;
  return Status::Ok();
}

Status CsvDataSource::Prepare() const {
  if (shard_rows_ > 0) return PrepareSharded();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (prepared_) return Status::Ok();
  }
  Result<std::shared_ptr<const DenseMatrix>> handle = AcquireVerified();
  if (!handle.ok()) return handle.status();
  std::lock_guard<std::mutex> lock(mu_);
  prepared_ = true;
  return Status::Ok();
}

DatasetSpec CsvDataSource::spec() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spec_;
}

double CsvDataSource::CacheResidency() const {
  size_t num_shards = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!prepared_) return 0.0;  // nothing loaded yet, and probing loads nothing
    num_shards = spec_.shards.size();
  }
  if (shard_rows_ == 0) return cache_->Resident(cache_key_) ? 1.0 : 0.0;
  if (num_shards == 0) return 0.0;
  size_t resident = 0;
  for (size_t i = 0; i < num_shards; ++i) {
    if (cache_->Resident(ShardKey(static_cast<int>(i)))) ++resident;
  }
  return static_cast<double>(resident) / static_cast<double>(num_shards);
}

Result<DenseMatrix> CsvDataSource::LoadShard(int index) const {
  std::string path;
  DatasetShard shard;
  int cols = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    LEAST_CHECK(prepared_ && index >= 0 &&
                index < static_cast<int>(spec_.shards.size()));
    path = spec_.path;
    shard = spec_.shards[static_cast<size_t>(index)];
    cols = spec_.cols;
  }
  return ParseShardExtent(path, shard.byte_offset, shard.byte_size,
                          shard.row_end - shard.row_begin, cols);
}

Result<std::shared_ptr<const DenseMatrix>> CsvDataSource::AcquireShard(
    int index) const {
  const std::string key = ShardKey(index);
  Result<std::shared_ptr<const DenseMatrix>> acquired =
      cache_->GetOrLoad(key, [this, index]() { return LoadShard(index); });
  if (!acquired.ok()) return acquired;
  // Same transient-fault site as `AcquireVerified`: no Drop, the shard
  // stays cached for the retry.
  LEAST_FAILPOINT("cache.verify");
  const std::shared_ptr<const DenseMatrix>& handle = acquired.value();
  std::lock_guard<std::mutex> lock(mu_);
  std::weak_ptr<const DenseMatrix>& seen =
      verified_shards_[static_cast<size_t>(index)];
  if (handle == seen.lock()) return acquired;  // same payload object
  // First touch of this payload object (load, reload after eviction, or a
  // foreign source repopulating the shared entry): verify it against the
  // layout recorded at Prepare before letting a single value through.
  const DatasetShard& shard = spec_.shards[static_cast<size_t>(index)];
  const int rows = shard.row_end - shard.row_begin;
  if (handle->rows() != rows || handle->cols() != spec_.cols ||
      HashShardContent(shard.row_begin, shard.row_end, *handle) !=
          shard.content_hash) {
    // Release the refused payload's reservation (see `AcquireVerified`).
    cache_->Drop(key);
    return Status::InvalidArgument(
        "CSV dataset '" + spec_.path + "' shard " + std::to_string(index) +
        " content mismatch (file changed since it was recorded)");
  }
  seen = handle;
  return acquired;
}

Result<std::shared_ptr<const DenseMatrix>> CsvDataSource::Dense() const {
  if (shard_rows_ == 0) return AcquireVerified();
  const Status prepared = Prepare();
  if (!prepared.ok()) return prepared;
  int n = 0, d = 0, num_shards = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    n = spec_.rows;
    d = spec_.cols;
    num_shards = static_cast<int>(spec_.shards.size());
  }
  // Whole-matrix materialization of a sharded dataset is caller-owned and
  // deliberately outside the cache budget: it is the explicit opt-out of
  // streaming (dense learners). Shards are pinned one at a time, so the
  // transient overhead above the result itself is a single shard.
  auto full = std::make_shared<DenseMatrix>(n, d);
  for (int s = 0; s < num_shards; ++s) {
    Result<std::shared_ptr<const DenseMatrix>> shard = AcquireShard(s);
    if (!shard.ok()) return shard.status();
    const DenseMatrix& m = *shard.value();
    std::memcpy(full->row(s * shard_rows_), m.data().data(),
                m.size() * sizeof(double));
  }
  return std::static_pointer_cast<const DenseMatrix>(full);
}

Result<std::shared_ptr<const CsrMatrix>> CsvDataSource::Csr() const {
  Result<std::shared_ptr<const DenseMatrix>> dense = Dense();
  if (!dense.ok()) return dense.status();
  return std::make_shared<const CsrMatrix>(CsrMatrix::FromDense(*dense.value()));
}

Status CsvDataSource::GatherSharded(std::span<const int> rows,
                                    DenseMatrix* out,
                                    GatherScratch* scratch) const {
  const Status prepared = Prepare();
  if (!prepared.ok()) return prepared;
  int n = 0, d = 0, num_shards = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    n = spec_.rows;
    d = spec_.cols;
    num_shards = static_cast<int>(spec_.shards.size());
  }
  return GatherFromShards(rows, out, scratch, n, d, shard_rows_, num_shards,
                          [this](int s) { return AcquireShard(s); });
}

Status CsvDataSource::GatherTransposed(std::span<const int> rows,
                                       DenseMatrix* out) const {
  return GatherTransposed(rows, out, nullptr);
}

Status CsvDataSource::GatherTransposed(std::span<const int> rows,
                                       DenseMatrix* out,
                                       GatherScratch* scratch) const {
  if (shard_rows_ > 0) return GatherSharded(rows, out, scratch);
  // Re-acquired per batch on purpose: holding the handle across the whole
  // fit would pin the dataset and defeat the cache budget. Verification is
  // pointer-identity-gated, so the steady-state cost is one cache lookup.
  Result<std::shared_ptr<const DenseMatrix>> dense = AcquireVerified();
  if (!dense.ok()) return dense.status();
  GatherFromDense(*dense.value(), rows, out);
  return Status::Ok();
}

// -------------------------------------------------------------- factories ---

std::shared_ptr<DataSource> MakeDenseSource(DenseMatrix x, std::string name) {
  return std::make_shared<OwningDenseDataSource>(std::move(x),
                                                 std::move(name));
}

std::shared_ptr<DataSource> MakeDenseSource(
    std::shared_ptr<const DenseMatrix> x, std::string name) {
  return std::make_shared<OwningDenseDataSource>(std::move(x),
                                                 std::move(name));
}

std::shared_ptr<DataSource> MakeCsrSource(CsrMatrix x, std::string name) {
  return std::make_shared<OwningCsrDataSource>(std::move(x), std::move(name));
}

std::shared_ptr<DataSource> MakeCsrSource(std::shared_ptr<const CsrMatrix> x,
                                          std::string name) {
  return std::make_shared<OwningCsrDataSource>(std::move(x), std::move(name));
}

std::shared_ptr<DataSource> MakeCsvSource(std::string path,
                                          CsvSourceOptions options) {
  return std::make_shared<CsvDataSource>(std::move(path), std::move(options));
}

Status WriteMatrixCsv(const std::string& path, const DenseMatrix& x,
                      const std::vector<std::string>& header) {
  std::vector<std::vector<double>> rows;
  rows.reserve(static_cast<size_t>(x.rows()));
  for (int i = 0; i < x.rows(); ++i) {
    rows.emplace_back(x.row(i), x.row(i) + x.cols());
  }
  return WriteCsv(path, header, rows);
}

namespace {

/// Plain pointer, not atomic: installation happens once at process start
/// (main, or a test fixture) before any attach runs concurrently.
RemoteSourceFactory g_remote_source_factory = nullptr;

}  // namespace

void SetRemoteSourceFactory(RemoteSourceFactory factory) {
  g_remote_source_factory = factory;
}

RemoteSourceFactory GetRemoteSourceFactory() {
  return g_remote_source_factory;
}

Result<std::shared_ptr<const DataSource>> AttachDataset(
    const DatasetSpec& spec, DatasetCache* cache) {
  if (spec.kind == DatasetKind::kRemote) {
    RemoteSourceFactory factory = GetRemoteSourceFactory();
    if (factory == nullptr) {
      return Status::InvalidArgument(
          "remote dataset '" + spec.name +
          "' cannot be re-attached: no remote source factory is installed "
          "(call InstallHttpDataPlane() first)");
    }
    if (spec.path.empty()) {
      return Status::InvalidArgument(
          "remote dataset spec carries no origin URL to re-attach from");
    }
    return factory(spec, cache);
  }
  if (spec.kind == DatasetKind::kCsv) {
    if (spec.path.empty()) {
      return Status::InvalidArgument(
          "CSV dataset spec carries no path to re-attach from");
    }
    // A shard table requires its geometry; the reverse is fine — a spec
    // from an enqueue-time stub records shard_rows before the first scan
    // fills the table (re-attach then scans the layout fresh).
    if (spec.shard_rows < 0 || (!spec.shards.empty() && spec.shard_rows == 0)) {
      return Status::InvalidArgument(
          "CSV dataset spec carries an inconsistent shard layout");
    }
    CsvSourceOptions options;
    options.has_header = spec.csv_has_header;
    options.name = spec.name;
    options.cache = cache;
    options.expected_rows = spec.rows;
    options.expected_cols = spec.cols;
    options.expected_hash = spec.content_hash;
    // A sharded spec re-attaches in chunked mode: the recorded layout
    // becomes the expectation, so `Prepare` refuses a file whose shard row
    // ranges or value hashes drifted since the checkpoint.
    options.shard_rows = spec.shard_rows;
    options.expected_shards = spec.shards;
    return std::static_pointer_cast<const DataSource>(
        MakeCsvSource(spec.path, std::move(options)));
  }
  return Status::InvalidArgument(
      "in-memory dataset '" + spec.name + "' (kind " +
      std::string(DatasetKindName(spec.kind)) +
      ") cannot be re-attached from its spec; supply a data resolver");
}

}  // namespace least
