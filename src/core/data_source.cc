#include "core/data_source.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "linalg/parallel.h"
#include "util/csv.h"
#include "util/fnv.h"

namespace least {

namespace {

void GatherFromDense(const DenseMatrix& x, std::span<const int> rows,
                     DenseMatrix* out) {
  LEAST_CHECK(out != nullptr);
  const int batch = static_cast<int>(rows.size());
  const int d = x.cols();
  LEAST_CHECK(out->rows() == d && out->cols() == batch);
  const int64_t flops = static_cast<int64_t>(batch) * d;
  MaybeParallelForFlops(flops, 0, batch, /*grain=*/-1,
                        [&](int64_t b_lo, int64_t b_hi) {
    for (int64_t b = b_lo; b < b_hi; ++b) {
      const int r = rows[static_cast<size_t>(b)];
      LEAST_DCHECK(r >= 0 && r < x.rows());
      const double* src = x.row(r);
      for (int v = 0; v < d; ++v) {
        (*out)(v, static_cast<int>(b)) = src[v];
      }
    }
  });
}

void GatherFromCsr(const CsrMatrix& x, std::span<const int> rows,
                   DenseMatrix* out) {
  LEAST_CHECK(out != nullptr);
  const int batch = static_cast<int>(rows.size());
  LEAST_CHECK(out->rows() == x.cols() && out->cols() == batch);
  out->Fill(0.0);
  const int64_t avg_row_nnz =
      x.rows() > 0 ? std::max<int64_t>(1, x.nnz() / x.rows()) : 1;
  const int64_t flops = static_cast<int64_t>(batch) * avg_row_nnz;
  MaybeParallelForFlops(flops, 0, batch, /*grain=*/-1,
                        [&](int64_t b_lo, int64_t b_hi) {
    for (int64_t b = b_lo; b < b_hi; ++b) {
      const int r = rows[static_cast<size_t>(b)];
      LEAST_DCHECK(r >= 0 && r < x.rows());
      for (int64_t e = x.row_ptr()[r]; e < x.row_ptr()[r + 1]; ++e) {
        (*out)(x.col_idx()[e], static_cast<int>(b)) = x.values()[e];
      }
    }
  });
}

}  // namespace

std::string_view DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kDense:
      return "dense";
    case DatasetKind::kCsr:
      return "csr";
    case DatasetKind::kCsv:
      return "csv";
    case DatasetKind::kVirtual:
      return "virtual";
  }
  return "unknown";
}

uint64_t HashDenseContent(const DenseMatrix& x) {
  uint64_t hash = kFnv1aOffset;
  hash = Fnv1aFold(hash, static_cast<uint64_t>(x.rows()));
  hash = Fnv1aFold(hash, static_cast<uint64_t>(x.cols()));
  return Fnv1aFold(hash, x.data().data(), x.size() * sizeof(double));
}

uint64_t HashCsrContent(const CsrMatrix& x) {
  uint64_t hash = kFnv1aOffset;
  hash = Fnv1aFold(hash, static_cast<uint64_t>(x.rows()));
  hash = Fnv1aFold(hash, static_cast<uint64_t>(x.cols()));
  hash = Fnv1aFold(hash, static_cast<uint64_t>(x.nnz()));
  hash = Fnv1aFold(hash, x.row_ptr().data(),
                   x.row_ptr().size() * sizeof(int64_t));
  hash = Fnv1aFold(hash, x.col_idx().data(), x.col_idx().size() * sizeof(int));
  return Fnv1aFold(hash, x.values().data(),
                   x.values().size() * sizeof(double));
}

// ------------------------------------------------ OwningDenseDataSource ---

OwningDenseDataSource::OwningDenseDataSource(DenseMatrix x, std::string name)
    : OwningDenseDataSource(
          std::make_shared<const DenseMatrix>(std::move(x)), std::move(name)) {}

OwningDenseDataSource::OwningDenseDataSource(
    std::shared_ptr<const DenseMatrix> x, std::string name)
    : x_(std::move(x)) {
  LEAST_CHECK(x_ != nullptr);
  spec_.kind = DatasetKind::kDense;
  spec_.name = name.empty() ? std::string(DatasetKindName(spec_.kind))
                            : std::move(name);
  spec_.rows = x_->rows();
  spec_.cols = x_->cols();
}

DatasetSpec OwningDenseDataSource::spec() const {
  std::call_once(hash_once_, [this]() { hash_ = HashDenseContent(*x_); });
  DatasetSpec spec = spec_;
  spec.content_hash = hash_;
  return spec;
}

Result<std::shared_ptr<const CsrMatrix>> OwningDenseDataSource::Csr() const {
  return std::make_shared<const CsrMatrix>(CsrMatrix::FromDense(*x_));
}

Status OwningDenseDataSource::GatherTransposed(std::span<const int> rows,
                                               DenseMatrix* out) const {
  GatherFromDense(*x_, rows, out);
  return Status::Ok();
}

// -------------------------------------------------- OwningCsrDataSource ---

OwningCsrDataSource::OwningCsrDataSource(CsrMatrix x, std::string name)
    : OwningCsrDataSource(std::make_shared<const CsrMatrix>(std::move(x)),
                          std::move(name)) {}

OwningCsrDataSource::OwningCsrDataSource(std::shared_ptr<const CsrMatrix> x,
                                         std::string name)
    : x_(std::move(x)) {
  LEAST_CHECK(x_ != nullptr);
  spec_.kind = DatasetKind::kCsr;
  spec_.name = name.empty() ? std::string(DatasetKindName(spec_.kind))
                            : std::move(name);
  spec_.rows = x_->rows();
  spec_.cols = x_->cols();
}

DatasetSpec OwningCsrDataSource::spec() const {
  std::call_once(hash_once_, [this]() { hash_ = HashCsrContent(*x_); });
  DatasetSpec spec = spec_;
  spec.content_hash = hash_;
  return spec;
}

Result<std::shared_ptr<const DenseMatrix>> OwningCsrDataSource::Dense() const {
  return std::make_shared<const DenseMatrix>(x_->ToDense());
}

Status OwningCsrDataSource::GatherTransposed(std::span<const int> rows,
                                             DenseMatrix* out) const {
  GatherFromCsr(*x_, rows, out);
  return Status::Ok();
}

// ------------------------------------------------------------ DatasetCache ---

DatasetCache::DatasetCache(size_t byte_budget)
    : accounting_(std::make_shared<Accounting>()), byte_budget_(byte_budget) {}

DatasetCache::~DatasetCache() = default;

std::shared_ptr<const DenseMatrix> DatasetCache::LookupLocked(
    const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  if (it->second.cached != nullptr) {
    it->second.last_used = ++tick_;
    return it->second.cached;
  }
  // Evicted but possibly still pinned by a running job: re-promote (the
  // bytes are already charged, so this never changes residency).
  if (auto handle = it->second.alive.lock()) {
    it->second.cached = handle;
    it->second.last_used = ++tick_;
    return handle;
  }
  entries_.erase(it);  // fully released since eviction
  return nullptr;
}

void DatasetCache::EvictForLocked(size_t incoming) {
  while (true) {
    size_t resident = 0;
    {
      std::lock_guard<std::mutex> alock(accounting_->mu);
      resident = accounting_->resident;
    }
    if (resident + incoming <= byte_budget_) return;
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.cached == nullptr) continue;
      if (victim == entries_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything left is pinned
    victim->second.cached.reset();  // may free inline when unpinned
    ++evictions_;
    if (victim->second.alive.expired()) entries_.erase(victim);
  }
}

Result<std::shared_ptr<const DenseMatrix>> DatasetCache::GetOrLoad(
    const std::string& key, const Loader& loader) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto handle = LookupLocked(key)) {
      ++hits_;
      return handle;
    }
  }
  // Single-flight: misses serialize so concurrent jobs never parse the same
  // file twice nor overshoot the budget with duplicate payloads.
  std::lock_guard<std::mutex> load_lock(load_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto handle = LookupLocked(key)) {
      ++hits_;
      return handle;
    }
  }
  Result<DenseMatrix> loaded = loader();
  if (!loaded.ok()) return loaded.status();
  DenseMatrix matrix = std::move(loaded).value();
  const size_t bytes = matrix.size() * sizeof(double);

  std::lock_guard<std::mutex> lock(mu_);
  EvictForLocked(bytes);  // make room before charging the newcomer
  std::shared_ptr<Accounting> acct = accounting_;
  auto* raw = new DenseMatrix(std::move(matrix));
  std::shared_ptr<const DenseMatrix> handle(
      raw, [acct, bytes](const DenseMatrix* p) {
        delete p;
        std::lock_guard<std::mutex> alock(acct->mu);
        acct->resident -= bytes;
      });
  {
    std::lock_guard<std::mutex> alock(acct->mu);
    acct->resident += bytes;
    acct->peak = std::max(acct->peak, acct->resident);
  }
  Entry& entry = entries_[key];
  entry.cached = handle;
  entry.alive = handle;
  entry.bytes = bytes;
  entry.last_used = ++tick_;
  ++misses_;
  return handle;
}

void DatasetCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : entries_) {
    if (entry.cached != nullptr) {
      entry.cached.reset();
      ++evictions_;
    }
  }
  entries_.clear();
}

void DatasetCache::set_byte_budget(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  byte_budget_ = bytes;
  EvictForLocked(0);
}

size_t DatasetCache::byte_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return byte_budget_;
}

DatasetCache::Stats DatasetCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.byte_budget = byte_budget_;
  {
    std::lock_guard<std::mutex> alock(accounting_->mu);
    s.resident_bytes = accounting_->resident;
    s.peak_resident_bytes = accounting_->peak;
  }
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = static_cast<int64_t>(entries_.size());
  return s;
}

size_t DatasetCache::resident_bytes() const {
  std::lock_guard<std::mutex> alock(accounting_->mu);
  return accounting_->resident;
}

DatasetCache& GlobalDatasetCache() {
  static DatasetCache* cache = new DatasetCache();
  return *cache;
}

// ----------------------------------------------------------- CsvDataSource ---

CsvDataSource::CsvDataSource(std::string path, CsvSourceOptions options)
    : cache_(options.cache != nullptr ? options.cache
                                      : &GlobalDatasetCache()) {
  LEAST_CHECK(!path.empty());
  spec_.kind = DatasetKind::kCsv;
  spec_.path = std::move(path);
  spec_.name = options.name.empty() ? spec_.path : std::move(options.name);
  spec_.csv_has_header = options.has_header;
  spec_.rows = options.expected_rows;
  spec_.cols = options.expected_cols;
  spec_.content_hash = options.expected_hash;
  // Parse options are part of the payload identity: two sources reading
  // the same file with and without a header must not share cache entries.
  cache_key_ = spec_.path + (options.has_header ? "#header" : "#noheader");
}

Result<DenseMatrix> CsvDataSource::Load() const {
  bool has_header = false;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    has_header = spec_.csv_has_header;
    path = spec_.path;
  }
  Result<CsvTable> table = ReadCsv(path, has_header);
  if (!table.ok()) return table.status();
  const auto& rows = table.value().rows;
  if (rows.empty()) {
    return Status::InvalidArgument("CSV dataset '" + path +
                                   "' contains no data rows");
  }
  const int n = static_cast<int>(rows.size());
  const int d = static_cast<int>(rows[0].size());
  if (d == 0) {
    return Status::InvalidArgument("CSV dataset '" + path +
                                   "' has zero columns");
  }
  DenseMatrix x(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) x(i, j) = rows[i][j];
  }
  return x;
}

Result<std::shared_ptr<const DenseMatrix>> CsvDataSource::AcquireVerified()
    const {
  Result<std::shared_ptr<const DenseMatrix>> acquired =
      cache_->GetOrLoad(cache_key_, [this]() { return Load(); });
  if (!acquired.ok()) return acquired;
  const std::shared_ptr<const DenseMatrix>& handle = acquired.value();
  std::lock_guard<std::mutex> lock(mu_);
  if (handle == verified_.lock()) return acquired;  // same payload object
  // The payload changed since we last checked — first touch, a reload
  // after eviction, or another source repopulating the shared entry.
  // Expectations (from a checkpointed spec) and the shape/hash recorded at
  // first touch must match: a file mutated mid-run would silently corrupt
  // a deterministic fleet, so refuse it instead. This runs on cache hits
  // of unseen payload objects too, never on the per-batch fast path.
  const int n = handle->rows();
  const int d = handle->cols();
  if ((spec_.rows != 0 && spec_.rows != n) ||
      (spec_.cols != 0 && spec_.cols != d)) {
    return Status::InvalidArgument(
        "CSV dataset '" + spec_.path + "' is " + std::to_string(n) + "x" +
        std::to_string(d) + " but " + std::to_string(spec_.rows) + "x" +
        std::to_string(spec_.cols) + " was expected");
  }
  const uint64_t hash = HashDenseContent(*handle);
  if (spec_.content_hash != 0 && spec_.content_hash != hash) {
    return Status::InvalidArgument(
        "CSV dataset '" + spec_.path +
        "' content hash mismatch (file changed since it was recorded)");
  }
  spec_.rows = n;
  spec_.cols = d;
  spec_.content_hash = hash;
  verified_ = handle;
  return acquired;
}

Status CsvDataSource::Prepare() const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (prepared_) return Status::Ok();
  }
  Result<std::shared_ptr<const DenseMatrix>> handle = AcquireVerified();
  if (!handle.ok()) return handle.status();
  std::lock_guard<std::mutex> lock(mu_);
  prepared_ = true;
  return Status::Ok();
}

DatasetSpec CsvDataSource::spec() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spec_;
}

Result<std::shared_ptr<const DenseMatrix>> CsvDataSource::Dense() const {
  return AcquireVerified();
}

Result<std::shared_ptr<const CsrMatrix>> CsvDataSource::Csr() const {
  Result<std::shared_ptr<const DenseMatrix>> dense = AcquireVerified();
  if (!dense.ok()) return dense.status();
  return std::make_shared<const CsrMatrix>(CsrMatrix::FromDense(*dense.value()));
}

Status CsvDataSource::GatherTransposed(std::span<const int> rows,
                                       DenseMatrix* out) const {
  // Re-acquired per batch on purpose: holding the handle across the whole
  // fit would pin the dataset and defeat the cache budget. Verification is
  // pointer-identity-gated, so the steady-state cost is one cache lookup.
  Result<std::shared_ptr<const DenseMatrix>> dense = AcquireVerified();
  if (!dense.ok()) return dense.status();
  GatherFromDense(*dense.value(), rows, out);
  return Status::Ok();
}

// -------------------------------------------------------------- factories ---

std::shared_ptr<DataSource> MakeDenseSource(DenseMatrix x, std::string name) {
  return std::make_shared<OwningDenseDataSource>(std::move(x),
                                                 std::move(name));
}

std::shared_ptr<DataSource> MakeDenseSource(
    std::shared_ptr<const DenseMatrix> x, std::string name) {
  return std::make_shared<OwningDenseDataSource>(std::move(x),
                                                 std::move(name));
}

std::shared_ptr<DataSource> MakeCsrSource(CsrMatrix x, std::string name) {
  return std::make_shared<OwningCsrDataSource>(std::move(x), std::move(name));
}

std::shared_ptr<DataSource> MakeCsrSource(std::shared_ptr<const CsrMatrix> x,
                                          std::string name) {
  return std::make_shared<OwningCsrDataSource>(std::move(x), std::move(name));
}

std::shared_ptr<DataSource> MakeCsvSource(std::string path,
                                          CsvSourceOptions options) {
  return std::make_shared<CsvDataSource>(std::move(path), std::move(options));
}

Result<std::shared_ptr<const DataSource>> AttachDataset(
    const DatasetSpec& spec, DatasetCache* cache) {
  if (spec.kind == DatasetKind::kCsv) {
    if (spec.path.empty()) {
      return Status::InvalidArgument(
          "CSV dataset spec carries no path to re-attach from");
    }
    CsvSourceOptions options;
    options.has_header = spec.csv_has_header;
    options.name = spec.name;
    options.cache = cache;
    options.expected_rows = spec.rows;
    options.expected_cols = spec.cols;
    options.expected_hash = spec.content_hash;
    return std::static_pointer_cast<const DataSource>(
        MakeCsvSource(spec.path, std::move(options)));
  }
  return Status::InvalidArgument(
      "in-memory dataset '" + spec.name + "' (kind " +
      std::string(DatasetKindName(spec.kind)) +
      ") cannot be re-attached from its spec; supply a data resolver");
}

}  // namespace least
