#include "core/least_sparse.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <unordered_set>

#include "constraint/spectral_bound.h"
#include "linalg/hutchinson.h"
#include "linalg/parallel.h"
#include "opt/adam.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace least {

namespace {

// Builds the initial CSR pattern: ζ-density random off-diagonal support plus
// candidate edges, Glorot-uniform values.
CsrMatrix InitialPattern(int d, double density,
                         const std::vector<std::pair<int, int>>& candidates,
                         Rng& rng) {
  std::unordered_set<int64_t> seen;
  std::vector<Triplet> triplets;
  auto add = [&](int i, int j) {
    if (i == j) return;
    const int64_t key = static_cast<int64_t>(i) * d + j;
    if (!seen.insert(key).second) return;
    triplets.push_back({i, j, rng.GlorotUniform(d, d)});
  };
  for (const auto& [i, j] : candidates) {
    LEAST_CHECK(i >= 0 && i < d && j >= 0 && j < d);
    add(i, j);
  }
  const long long want =
      static_cast<long long>(density * static_cast<double>(d) * d);
  // Rejection sampling is fine: ζ ≪ 1 in every intended configuration.
  for (long long t = 0; t < want; ++t) add(rng.UniformInt(d), rng.UniformInt(d));
  return CsrMatrix::FromTriplets(d, d, std::move(triplets));
}

// S = W ∘ W on the same pattern (for the Hutchinson h estimate).
CsrMatrix SquaredValues(const CsrMatrix& w) {
  CsrMatrix s = w;
  for (double& v : s.values()) v = v * v;
  return s;
}

}  // namespace

LeastSparseLearner::LeastSparseLearner(const LearnOptions& options)
    : options_(options) {}

SparseLearnResult LeastSparseLearner::Fit(const DataSource& data) const {
  return FitInternal(data, nullptr);
}

SparseLearnResult LeastSparseLearner::ResumeFit(const TrainState& state,
                                                const DataSource& data) const {
  SparseLearnResult result;
  if (!state.sparse) {
    result.status = Status::InvalidArgument(
        "cannot resume the sparse learner from a dense train state");
    return result;
  }
  if (state.sparse_w.rows() != data.num_cols() ||
      state.sparse_w.cols() != data.num_cols()) {
    result.status = Status::InvalidArgument(
        "train state shape does not match the data source");
    return result;
  }
  if (state.outer < 1 || state.inner_steps < 0) {
    result.status = Status::InvalidArgument("corrupt train state indices");
    return result;
  }
  if (state.inner_steps > 0 &&
      (state.adam_m.size() != static_cast<size_t>(state.sparse_w.nnz()) ||
       state.adam_m.size() != state.adam_v.size())) {
    result.status = Status::InvalidArgument(
        "train state Adam moments do not match the stored pattern");
    return result;
  }
  return FitInternal(data, &state);
}

SparseLearnResult LeastSparseLearner::FitInternal(
    const DataSource& data, const TrainState* resume) const {
  SparseLearnResult result;
  const Status prepared = data.Prepare();
  if (!prepared.ok()) {
    result.status = prepared;
    return result;
  }
  const int d = data.num_cols();
  const int n = data.num_rows();
  if (d == 0 || n == 0) {
    result.status = Status::InvalidArgument("empty data source");
    return result;
  }
  const LearnOptions& opt = options_;
  Stopwatch watch;
  Rng rng(opt.seed);

  const int batch =
      opt.batch_size > 0 ? std::min(opt.batch_size, n) : std::min(n, 1000);

  CsrMatrix w;
  double rho = opt.rho_init;
  double eta = opt.eta_init;
  double constraint_value = 0.0;
  double prev_round_constraint = std::numeric_limits<double>::infinity();
  int start_outer = 1;
  double time_offset = 0.0;
  bool resume_mid_round = false;

  if (resume == nullptr) {
    w = InitialPattern(d, opt.init_density, candidate_edges_, rng);
  } else {
    if (!rng.LoadState(resume->rng_state)) {
      result.status = Status::InvalidArgument(
          "train state carries an unparsable RNG state");
      return result;
    }
    w = resume->sparse_w;
    rho = resume->rho;
    eta = resume->eta;
    prev_round_constraint = resume->prev_round_constraint;
    constraint_value = resume->constraint_value;
    start_outer = resume->outer;
    resume_mid_round = resume->inner_steps > 0;
    time_offset = resume->elapsed_seconds;
    result.trace = resume->trace;
    result.inner_iterations = resume->total_inner;
    result.outer_iterations = resume->outer - 1;
  }

  SpectralBoundOptions bound{.k = opt.k, .alpha = opt.alpha};
  SparseBoundWorkspace bound_ws;

  DenseMatrix xt(d, batch);        // batch, transposed: row v = variable v
  DenseMatrix rt(d, batch);        // residual, transposed
  std::vector<int> batch_rows(batch);
  // One scratch for the whole fit: sharded sources group each batch by
  // row-range shard in here, so steady-state gathers allocate nothing.
  GatherScratch gather_scratch;
  std::vector<double> constraint_grad;
  std::vector<double> total_grad;
  std::vector<int64_t> kept;

  bool converged = false;

  // One optimizer hoisted out of the round loop; rounds re-initialize it in
  // place for the current nnz (the pattern only shrinks after Compact, so
  // the moment buffers reach their high-water size in round one).
  Adam adam(0);

  auto stop_requested = [this]() { return stop_ != nullptr && stop_(); };
  auto make_state = [&](int outer, int inner_steps, const Adam* adam,
                        double prev_objective, double last_loss) {
    auto state = CaptureTrainState(
        adam, rho, eta, prev_round_constraint, outer, inner_steps,
        prev_objective, last_loss, constraint_value, result.inner_iterations,
        result.trace, time_offset + watch.Seconds(), rng);
    state->sparse = true;
    state->sparse_w = w;
    return state;
  };
  auto cancelled_result = [&](int outer,
                              std::shared_ptr<const TrainState> state) {
    result.status = Status::Cancelled("stop requested at outer round " +
                                      std::to_string(outer));
    result.train_state = std::move(state);
    result.raw_weights = w;
    w.ThresholdValues(opt.prune_threshold);
    w.Compact(nullptr);
    result.weights = std::move(w);
    result.constraint_value = constraint_value;
    result.seconds = time_offset + watch.Seconds();
    return std::move(result);
  };

  for (int outer = start_outer; outer <= opt.max_outer_iterations; ++outer) {
    const bool resuming_here = resume_mid_round && outer == start_outer;
    if (!resuming_here) {
      if (stop_requested()) {
        return cancelled_result(
            outer, make_state(outer, 0, nullptr,
                              std::numeric_limits<double>::infinity(), 0.0));
      }
      if (checkpoint_ != nullptr && outer > 1 &&
          (outer - 1) % checkpoint_every_ == 0) {
        checkpoint_(*make_state(outer, 0, nullptr,
                                std::numeric_limits<double>::infinity(), 0.0));
      }
    }
    const double lr = std::max(
        opt.learning_rate * std::pow(opt.lr_decay, outer - 1),
        0.05 * opt.learning_rate);
    adam.Reinitialize(static_cast<size_t>(w.nnz()), {.learning_rate = lr});
    double prev_objective = std::numeric_limits<double>::infinity();
    double last_loss = 0.0;
    int inner_done = 0;
    int inner_start = 1;
    if (resuming_here) {
      adam.Restore({resume->adam_m, resume->adam_v, resume->adam_t});
      prev_objective = resume->prev_objective;
      last_loss = resume->last_loss;
      inner_done = resume->inner_steps;
      inner_start = resume->inner_steps + 1;
    }

    for (int inner = inner_start; inner <= opt.max_inner_iterations; ++inner) {
      const int64_t nnz = w.nnz();
      if (nnz == 0) break;  // everything thresholded away: trivially acyclic
      constraint_value =
          SpectralBoundSparse(w, bound, &constraint_grad, &bound_ws);

      // --- Mini-batch residual Rt = (X_B W − X_B)ᵀ, kept transposed. ---
      // An unsharded lazy source materializes the whole dataset here; a
      // sharded one streams only the row-range shards this batch touches,
      // so a dataset larger than its cache budget still fits the run.
      for (int b = 0; b < batch; ++b) batch_rows[b] = rng.UniformInt(n);
      const Status gathered =
          data.GatherTransposed(batch_rows, &xt, &gather_scratch);
      if (!gathered.ok()) {
        // A lazy source lost its backing mid-run (file deleted/mutated):
        // fail the run cleanly with the best weights so far, never crash.
        result.status = gathered;
        result.raw_weights = w;
        w.ThresholdValues(opt.prune_threshold);
        w.Compact(nullptr);
        result.weights = std::move(w);
        result.constraint_value = constraint_value;
        result.seconds = time_offset + watch.Seconds();
        return result;
      }
      rt = xt;
      rt.Scale(-1.0);
      const auto& row_ptr = w.row_ptr();
      const auto& col = w.col_idx();
      const auto& values = w.values();
      const int64_t batch_flops = nnz * batch;
      // O(B·nnz) accumulation, split over batch columns: each output column
      // rt(:, b) is written by exactly one chunk, in the same (i, e) order
      // as the serial loop, so results are bitwise identical with and
      // without an installed executor.
      MaybeParallelForFlops(batch_flops, 0, batch, /*grain=*/-1,
                            [&](int64_t b_lo, int64_t b_hi) {
        for (int i = 0; i < d; ++i) {
          const double* x_row = xt.row(i);
          for (int64_t e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
            const double wv = values[e];
            if (wv == 0.0) continue;
            double* r_row = rt.row(col[e]);
            for (int64_t b = b_lo; b < b_hi; ++b) r_row[b] += wv * x_row[b];
          }
        }
      });
      const double inv_b = 1.0 / batch;
      double smooth = DeterministicSumSquares(
          rt.data().data(), static_cast<int64_t>(rt.data().size()));
      smooth *= inv_b;

      // --- Pattern-restricted gradient, split over pattern rows (each
      // total_grad[e] belongs to exactly one row i; per-edge dots reduce
      // serially within their chunk, so the partition is pure).
      total_grad.resize(nnz);
      const double lagrange = rho * constraint_value + eta;
      MaybeParallelForFlops(batch_flops, 0, d, /*grain=*/-1,
                            [&](int64_t i_lo, int64_t i_hi) {
        for (int64_t i = i_lo; i < i_hi; ++i) {
          const double* x_row = xt.row(static_cast<int>(i));
          for (int64_t e = row_ptr[i]; e < row_ptr[i + 1]; ++e) {
            const double* r_row = rt.row(col[e]);
            double dot = 0.0;
            for (int b = 0; b < batch; ++b) dot += x_row[b] * r_row[b];
            const double wv = values[e];
            double g = 2.0 * inv_b * dot + lagrange * constraint_grad[e];
            if (wv != 0.0) g += wv > 0.0 ? opt.lambda1 : -opt.lambda1;
            total_grad[e] = g;
          }
        }
      });
      // L1 term, hoisted out of the parallel loop: a deterministic chunked
      // reduction in storage order — the chunk layout depends only on nnz,
      // so the sum is bit-identical across thread counts.
      const double* vp = values.data();
      const double l1 = DeterministicSum(0, nnz, [vp](int64_t lo, int64_t hi) {
        double s = 0.0;
        for (int64_t i = lo; i < hi; ++i) s += std::fabs(vp[i]);
        return s;
      });
      const double loss_value = smooth + opt.lambda1 * l1;
      const double objective =
          loss_value + 0.5 * rho * constraint_value * constraint_value +
          eta * constraint_value;
      if (!std::isfinite(objective)) {
        result.status = Status::NotConverged(
            "objective diverged (non-finite) at outer round " +
            std::to_string(outer));
        result.raw_weights = w;
        w.ThresholdValues(opt.prune_threshold);
        w.Compact(nullptr);
        result.weights = std::move(w);
        result.seconds = time_offset + watch.Seconds();
        return result;
      }

      adam.Step(w.values(), total_grad);
      if (outer > opt.threshold_warmup_rounds) {
        w.ThresholdValues(opt.filter_threshold);
      }
      last_loss = loss_value;
      ++inner_done;
      if (inner % opt.inner_check_every == 0) {
        const double rel = std::fabs(objective - prev_objective) /
                           std::max(1.0, std::fabs(prev_objective));
        if (rel < opt.inner_rtol) break;
        prev_objective = objective;
        // Polled after the convergence bookkeeping so a snapshot taken here
        // re-enters the loop at inner + 1 with no replayed work.
        if (stop_requested()) {
          return cancelled_result(
              outer, make_state(outer, inner, &adam, prev_objective,
                                last_loss));
        }
      }
    }
    result.inner_iterations += inner_done;
    result.outer_iterations = outer;

    // Physically drop thresholded entries; later rounds shrink with nnz.
    w.Compact(&kept);
    constraint_value = w.nnz() == 0
                           ? 0.0
                           : SpectralBoundSparse(w, bound, nullptr, &bound_ws);

    TracePoint tp;
    tp.outer = outer;
    tp.seconds = time_offset + watch.Seconds();
    tp.constraint_value = constraint_value;
    tp.loss = last_loss;
    tp.nnz = w.nnz();
    if (opt.track_estimated_h && w.nnz() > 0) {
      tp.h_value = EstimateExpmTraceMinusDim(SquaredValues(w));
    }
    result.trace.push_back(tp);
    if (opt.verbose) {
      std::fprintf(stderr,
                   "[least-sp] outer=%d inner=%d constraint=%.3e loss=%.4f "
                   "nnz=%lld t=%.1fs\n",
                   outer, inner_done, constraint_value, last_loss,
                   static_cast<long long>(tp.nnz), tp.seconds);
    }

    if (constraint_value <= opt.tolerance) {
      converged = true;
      break;
    }
    eta += rho * constraint_value;
    if (constraint_value > opt.rho_progress_ratio * prev_round_constraint) {
      rho = std::min(rho * opt.rho_growth, opt.rho_max);
    }
    prev_round_constraint = constraint_value;
  }

  result.raw_weights = w;
  w.ThresholdValues(opt.prune_threshold);
  w.Compact(nullptr);
  result.weights = std::move(w);
  result.constraint_value = constraint_value;
  result.seconds = time_offset + watch.Seconds();
  if (converged) {
    result.status = Status::Ok();
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3e", constraint_value);
    result.status = Status::NotConverged(
        std::string("constraint ") + buf + " above tolerance after " +
        std::to_string(result.outer_iterations) + " outer rounds");
  }
  return result;
}

SparseLearnResult FitLeastSparse(const DenseMatrix& x,
                                 const LearnOptions& options) {
  // Strictly synchronous call, so a non-owning alias of `x` is safe here —
  // the source never outlives this frame.
  OwningDenseDataSource source(
      std::shared_ptr<const DenseMatrix>(std::shared_ptr<const DenseMatrix>(),
                                         &x));
  return LeastSparseLearner(options).Fit(source);
}

}  // namespace least
