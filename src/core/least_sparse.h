/// \file least_sparse.h
/// \brief LEAST-SP: the sparse-matrix implementation of LEAST.
///
/// This is the variant that scales to 10^4–10^5 variables (paper Sections IV
/// and V-B). W lives in CSR form; the learnable support is a random pattern
/// of density ζ (Glorot-initialized, paper Fig. 3 INNER line 1) optionally
/// united with caller-provided candidate edges (domain knowledge, or the
/// full true-support superset in tests). Per inner step the cost is
///   O(k·nnz)            spectral-bound value + gradient,
///   O(B·nnz + B·d)      mini-batch loss value + pattern gradient,
/// and memory never exceeds O(k·nnz + B·d): no d x d object is ever formed.
/// The O(B·nnz) batch loops (residual accumulation, pattern gradient) split
/// across the optional global `ParallelExecutor` (see `linalg/parallel.h`)
/// as pure output partitions, so results are bitwise identical with and
/// without an installed executor.
/// Thresholded entries are physically removed (pattern compaction) at outer
/// round boundaries, which keeps later rounds proportionally cheaper — the
/// "W remains sparse throughout the optimization" property of Section IV.

#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "core/data_source.h"
#include "core/learn_options.h"
#include "core/train_state.h"
#include "linalg/csr_matrix.h"
#include "util/status.h"

namespace least {

/// \brief Outcome of a sparse structure-learning run.
struct SparseLearnResult {
  Status status;
  CsrMatrix weights;          ///< learned W after final τ-pruning, compacted
  CsrMatrix raw_weights;      ///< W before final pruning
  double constraint_value = 0.0;
  int outer_iterations = 0;
  long long inner_iterations = 0;
  double seconds = 0.0;
  std::vector<TracePoint> trace;
  /// Set on `kCancelled`: resumable snapshot of the interrupted run (see
  /// `core/train_state.h`); null on every other status.
  std::shared_ptr<const TrainState> train_state;
};

/// \brief Sparse LEAST learner.
///
/// Thread safety: `Fit` is `const` and reentrant (all mutable state is
/// per-call); one learner may serve concurrent `Fit` calls. Configure via
/// the setters before sharing across threads.
class LeastSparseLearner {
 public:
  /// Polled at outer-round boundaries and at the inner convergence-check
  /// cadence; returning true stops `Fit` early with `kCancelled` and a
  /// resumable `SparseLearnResult::train_state` (see
  /// `ContinuousLearner::StopPredicate`).
  using StopPredicate = std::function<bool()>;

  /// Receives a resumable `TrainState` at outer-round boundaries (see
  /// `set_checkpoint_callback`).
  using CheckpointCallback = std::function<void(const TrainState&)>;

  explicit LeastSparseLearner(const LearnOptions& options);

  /// Extra (from, to) entries merged into the random initial pattern.
  /// Useful for injecting prior knowledge; tests use it to make tiny
  /// problems identifiable (a random ζ pattern on a 10-node graph would be
  /// empty).
  void set_candidate_edges(std::vector<std::pair<int, int>> edges) {
    candidate_edges_ = std::move(edges);
  }

  void set_stop_predicate(StopPredicate stop) { stop_ = std::move(stop); }

  /// Installs a periodic checkpoint sink invoked at the top of an outer
  /// round whenever `every_n_outer` rounds have completed since the last
  /// snapshot point. The callback runs on the `Fit` thread.
  void set_checkpoint_callback(CheckpointCallback cb, int every_n_outer = 1) {
    LEAST_CHECK(every_n_outer >= 1);
    checkpoint_ = std::move(cb);
    checkpoint_every_ = every_n_outer;
  }

  /// Learns a sparse weighted DAG from the data source. The source is
  /// `Prepare()`d first; preparation failures (unreadable/malformed lazy
  /// datasets) surface as the result's status.
  SparseLearnResult Fit(const DataSource& data) const;

  /// Continues an interrupted run from `state`. Given the same options,
  /// candidate edges, and data the original run saw, the continuation is
  /// bit-identical to the uninterrupted run. Wrong-kind or wrong-shape
  /// states fail with `kInvalidArgument`.
  SparseLearnResult ResumeFit(const TrainState& state,
                              const DataSource& data) const;

  const LearnOptions& options() const { return options_; }

 private:
  SparseLearnResult FitInternal(const DataSource& data,
                                const TrainState* resume) const;

  LearnOptions options_;
  std::vector<std::pair<int, int>> candidate_edges_;
  StopPredicate stop_;
  CheckpointCallback checkpoint_;
  int checkpoint_every_ = 1;
};

/// Convenience: runs LEAST-SP over an in-memory dense sample matrix.
SparseLearnResult FitLeastSparse(const DenseMatrix& x,
                                 const LearnOptions& options);

}  // namespace least
