#include "core/least_squares_loss.h"

#include <cmath>

namespace least {

double AddL1Subgradient(const DenseMatrix& w, double lambda1,
                        DenseMatrix* grad) {
  double l1 = 0.0;
  for (size_t i = 0; i < w.data().size(); ++i) {
    const double v = w.data()[i];
    l1 += std::fabs(v);
    if (grad != nullptr && v != 0.0) {
      grad->data()[i] += v > 0.0 ? lambda1 : -lambda1;
    }
  }
  return lambda1 * l1;
}

LeastSquaresLoss::LeastSquaresLoss(const DenseMatrix* x, double lambda1,
                                   int batch_size)
    : x_(x), lambda1_(lambda1), batch_size_(batch_size) {
  LEAST_CHECK(x_ != nullptr);
  if (batch_size_ >= x_->rows()) batch_size_ = 0;  // full batch
  const int d = x_->cols();
  if (batch_size_ <= 0) {
    // Gram precomputation: G = XᵀX, O(n d²) once.
    gram_ = DenseMatrix(d, d);
    const int n = x_->rows();
    for (int s = 0; s < n; ++s) {
      const double* row = x_->row(s);
      for (int i = 0; i < d; ++i) {
        const double xi = row[i];
        if (xi == 0.0) continue;
        double* g_row = gram_.row(i);
        for (int j = 0; j < d; ++j) g_row[j] += xi * row[j];
      }
    }
    trace_gram_ = gram_.Trace();
    gw_ = DenseMatrix(d, d);
  } else {
    xb_ = DenseMatrix(batch_size_, d);
    residual_ = DenseMatrix(batch_size_, d);
    batch_rows_.resize(batch_size_);
  }
}

double LeastSquaresLoss::ValueAndGradient(const DenseMatrix& w,
                                          DenseMatrix* grad_out, Rng& rng) {
  LEAST_CHECK(w.rows() == x_->cols() && w.cols() == x_->cols());
  const double smooth = full_batch() ? FullBatch(w, grad_out)
                                     : MiniBatch(w, grad_out, rng);
  return smooth + AddL1Subgradient(w, lambda1_, grad_out);
}

double LeastSquaresLoss::FullBatch(const DenseMatrix& w,
                                   DenseMatrix* grad_out) {
  const double inv_n = 1.0 / std::max(1, x_->rows());
  MatmulInto(gram_, w, &gw_);
  // smooth = (Tr G − 2⟨G, W⟩ + ⟨W, GW⟩) / n.
  double dot_gw = 0.0, dot_w_gw = 0.0;
  for (size_t i = 0; i < w.data().size(); ++i) {
    dot_gw += gram_.data()[i] * w.data()[i];
    dot_w_gw += w.data()[i] * gw_.data()[i];
  }
  const double smooth = (trace_gram_ - 2.0 * dot_gw + dot_w_gw) * inv_n;
  if (grad_out != nullptr) {
    LEAST_CHECK(grad_out->SameShape(w));
    for (size_t i = 0; i < w.data().size(); ++i) {
      grad_out->data()[i] =
          2.0 * inv_n * (gw_.data()[i] - gram_.data()[i]);
    }
  }
  return smooth;
}

double LeastSquaresLoss::MiniBatch(const DenseMatrix& w,
                                   DenseMatrix* grad_out, Rng& rng) {
  const int d = w.rows();
  const int n = x_->rows();
  const int batch = batch_size_;
  for (int b = 0; b < batch; ++b) batch_rows_[b] = rng.UniformInt(n);
  for (int b = 0; b < batch; ++b) {
    const double* src = x_->row(batch_rows_[b]);
    double* dst = xb_.row(b);
    for (int j = 0; j < d; ++j) dst[j] = src[j];
  }
  // residual = X_B W − X_B.
  MatmulInto(xb_, w, &residual_);
  residual_.AddScaled(xb_, -1.0);
  const double inv_b = 1.0 / batch;
  double smooth = 0.0;
  for (double v : residual_.data()) smooth += v * v;
  smooth *= inv_b;
  if (grad_out != nullptr) {
    LEAST_CHECK(grad_out->SameShape(w));
    // grad = (2/B) X_Bᵀ residual: accumulate rank-1 row contributions.
    grad_out->Fill(0.0);
    for (int b = 0; b < batch; ++b) {
      const double* xrow = xb_.row(b);
      const double* rrow = residual_.row(b);
      for (int i = 0; i < d; ++i) {
        const double xi = xrow[i];
        if (xi == 0.0) continue;
        double* g_row = grad_out->row(i);
        for (int j = 0; j < d; ++j) g_row[j] += xi * rrow[j];
      }
    }
    grad_out->Scale(2.0 * inv_b);
  }
  return smooth;
}

}  // namespace least
