#include "core/least_squares_loss.h"

#include <cmath>
#include <cstdint>

#include "linalg/parallel.h"

namespace least {

double AddL1Subgradient(const DenseMatrix& w, double lambda1,
                        DenseMatrix* grad) {
  const double* wp = w.data().data();
  double* gp = grad != nullptr ? grad->data().data() : nullptr;
  const double l1 = DeterministicSum(
      0, static_cast<int64_t>(w.data().size()),
      [wp, gp, lambda1](int64_t lo, int64_t hi) {
        double s = 0.0;
        for (int64_t i = lo; i < hi; ++i) {
          const double v = wp[i];
          s += std::fabs(v);
          if (gp != nullptr && v != 0.0) {
            gp[i] += v > 0.0 ? lambda1 : -lambda1;
          }
        }
        return s;
      });
  return lambda1 * l1;
}

LeastSquaresLoss::LeastSquaresLoss(const DenseMatrix* x, double lambda1,
                                   int batch_size, Workspace* ws_opt)
    : x_(x), lambda1_(lambda1), batch_size_(batch_size) {
  LEAST_CHECK(x_ != nullptr);
  Workspace& ws = ws_opt != nullptr ? *ws_opt : own_ws_;
  if (batch_size_ >= x_->rows()) batch_size_ = 0;  // full batch
  const int d = x_->cols();
  if (batch_size_ <= 0) {
    // Gram precomputation: G = XᵀX, O(n d²) once.
    gram_ = &ws.Matrix(d, d);
    gram_->Fill(0.0);
    const int n = x_->rows();
    for (int s = 0; s < n; ++s) {
      const double* row = x_->row(s);
      for (int i = 0; i < d; ++i) {
        const double xi = row[i];
        if (xi == 0.0) continue;
        double* g_row = gram_->row(i);
        for (int j = 0; j < d; ++j) g_row[j] += xi * row[j];
      }
    }
    trace_gram_ = gram_->Trace();
    gw_ = &ws.Matrix(d, d);
  } else {
    xb_ = &ws.Matrix(batch_size_, d);
    residual_ = &ws.Matrix(batch_size_, d);
    batch_rows_ = &ws.IntVector(batch_size_);
  }
}

double LeastSquaresLoss::ValueAndGradient(const DenseMatrix& w,
                                          DenseMatrix* grad_out, Rng& rng) {
  LEAST_CHECK(w.rows() == x_->cols() && w.cols() == x_->cols());
  const double smooth = full_batch() ? FullBatch(w, grad_out)
                                     : MiniBatch(w, grad_out, rng);
  return smooth + AddL1Subgradient(w, lambda1_, grad_out);
}

double LeastSquaresLoss::FullBatch(const DenseMatrix& w,
                                   DenseMatrix* grad_out) {
  const double inv_n = 1.0 / std::max(1, x_->rows());
  MatmulInto(*gram_, w, gw_);
  // smooth = (Tr G − 2⟨G, W⟩ + ⟨W, GW⟩) / n. Both dots in one deterministic
  // chunked pass.
  struct Dots {
    double gw;
    double w_gw;
  };
  const double* gram = gram_->data().data();
  const double* wp = w.data().data();
  const double* gwp = gw_->data().data();
  const Dots dots = DeterministicReduce(
      0, static_cast<int64_t>(w.data().size()), Dots{0.0, 0.0},
      [gram, wp, gwp](int64_t lo, int64_t hi) {
        Dots d{0.0, 0.0};
        for (int64_t i = lo; i < hi; ++i) {
          d.gw += gram[i] * wp[i];
          d.w_gw += wp[i] * gwp[i];
        }
        return d;
      },
      [](const Dots& a, const Dots& b) {
        return Dots{a.gw + b.gw, a.w_gw + b.w_gw};
      });
  const double smooth = (trace_gram_ - 2.0 * dots.gw + dots.w_gw) * inv_n;
  if (grad_out != nullptr) {
    LEAST_CHECK(grad_out->SameShape(w));
    // Pure elementwise map — safe for the optional parallel executor.
    double* grad = grad_out->data().data();
    MaybeParallelFor(
        0, static_cast<int64_t>(grad_out->data().size()), /*grain=*/-1,
        [grad, gwp, gram, inv_n](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            grad[i] = 2.0 * inv_n * (gwp[i] - gram[i]);
          }
        });
  }
  return smooth;
}

double LeastSquaresLoss::MiniBatch(const DenseMatrix& w,
                                   DenseMatrix* grad_out, Rng& rng) {
  const int d = w.rows();
  const int n = x_->rows();
  const int batch = batch_size_;
  std::vector<int>& batch_rows = *batch_rows_;
  DenseMatrix& xb = *xb_;
  DenseMatrix& residual = *residual_;
  for (int b = 0; b < batch; ++b) batch_rows[b] = rng.UniformInt(n);
  for (int b = 0; b < batch; ++b) {
    const double* src = x_->row(batch_rows[b]);
    double* dst = xb.row(b);
    for (int j = 0; j < d; ++j) dst[j] = src[j];
  }
  // residual = X_B W − X_B.
  MatmulInto(xb, w, &residual);
  residual.AddScaled(xb, -1.0);
  const double inv_b = 1.0 / batch;
  double smooth =
      DeterministicSumSquares(residual.data().data(),
                              static_cast<int64_t>(residual.data().size()));
  smooth *= inv_b;
  if (grad_out != nullptr) {
    LEAST_CHECK(grad_out->SameShape(w));
    // grad = (2/B) X_Bᵀ residual. Output rows are disjoint across i, and
    // each element accumulates its batch terms in the same b order as a
    // serial sweep, so the optional parallel split stays bitwise-identical.
    auto rows_kernel = [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        double* g_row = grad_out->row(static_cast<int>(i));
        for (int j = 0; j < d; ++j) g_row[j] = 0.0;
        for (int b = 0; b < batch; ++b) {
          const double xi = xb(b, static_cast<int>(i));
          if (xi == 0.0) continue;
          const double* rrow = residual.row(b);
          for (int j = 0; j < d; ++j) g_row[j] += xi * rrow[j];
        }
        for (int j = 0; j < d; ++j) g_row[j] *= 2.0 * inv_b;
      }
    };
    const int64_t flops = static_cast<int64_t>(d) * d * batch;
    MaybeParallelForFlops(flops, 0, d, /*grain=*/-1, rows_kernel);
  }
  return smooth;
}

}  // namespace least
