#include "core/least_squares_loss.h"

#include <cmath>
#include <cstdint>

#include "linalg/parallel.h"

namespace least {

double AddL1Subgradient(const DenseMatrix& w, double lambda1,
                        DenseMatrix* grad) {
  double l1 = 0.0;
  for (size_t i = 0; i < w.data().size(); ++i) {
    const double v = w.data()[i];
    l1 += std::fabs(v);
    if (grad != nullptr && v != 0.0) {
      grad->data()[i] += v > 0.0 ? lambda1 : -lambda1;
    }
  }
  return lambda1 * l1;
}

LeastSquaresLoss::LeastSquaresLoss(const DenseMatrix* x, double lambda1,
                                   int batch_size)
    : x_(x), lambda1_(lambda1), batch_size_(batch_size) {
  LEAST_CHECK(x_ != nullptr);
  if (batch_size_ >= x_->rows()) batch_size_ = 0;  // full batch
  const int d = x_->cols();
  if (batch_size_ <= 0) {
    // Gram precomputation: G = XᵀX, O(n d²) once.
    gram_ = DenseMatrix(d, d);
    const int n = x_->rows();
    for (int s = 0; s < n; ++s) {
      const double* row = x_->row(s);
      for (int i = 0; i < d; ++i) {
        const double xi = row[i];
        if (xi == 0.0) continue;
        double* g_row = gram_.row(i);
        for (int j = 0; j < d; ++j) g_row[j] += xi * row[j];
      }
    }
    trace_gram_ = gram_.Trace();
    gw_ = DenseMatrix(d, d);
  } else {
    xb_ = DenseMatrix(batch_size_, d);
    residual_ = DenseMatrix(batch_size_, d);
    batch_rows_.resize(batch_size_);
  }
}

double LeastSquaresLoss::ValueAndGradient(const DenseMatrix& w,
                                          DenseMatrix* grad_out, Rng& rng) {
  LEAST_CHECK(w.rows() == x_->cols() && w.cols() == x_->cols());
  const double smooth = full_batch() ? FullBatch(w, grad_out)
                                     : MiniBatch(w, grad_out, rng);
  return smooth + AddL1Subgradient(w, lambda1_, grad_out);
}

double LeastSquaresLoss::FullBatch(const DenseMatrix& w,
                                   DenseMatrix* grad_out) {
  const double inv_n = 1.0 / std::max(1, x_->rows());
  MatmulInto(gram_, w, &gw_);
  // smooth = (Tr G − 2⟨G, W⟩ + ⟨W, GW⟩) / n.
  double dot_gw = 0.0, dot_w_gw = 0.0;
  for (size_t i = 0; i < w.data().size(); ++i) {
    dot_gw += gram_.data()[i] * w.data()[i];
    dot_w_gw += w.data()[i] * gw_.data()[i];
  }
  const double smooth = (trace_gram_ - 2.0 * dot_gw + dot_w_gw) * inv_n;
  if (grad_out != nullptr) {
    LEAST_CHECK(grad_out->SameShape(w));
    // Pure elementwise map — safe for the optional parallel executor.
    std::span<double> grad = grad_out->data();
    std::span<const double> gw = gw_.data();
    std::span<const double> gram = gram_.data();
    MaybeParallelFor(
        0, static_cast<int64_t>(grad.size()), /*grain=*/-1,
        [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            grad[i] = 2.0 * inv_n * (gw[i] - gram[i]);
          }
        });
  }
  return smooth;
}

double LeastSquaresLoss::MiniBatch(const DenseMatrix& w,
                                   DenseMatrix* grad_out, Rng& rng) {
  const int d = w.rows();
  const int n = x_->rows();
  const int batch = batch_size_;
  for (int b = 0; b < batch; ++b) batch_rows_[b] = rng.UniformInt(n);
  for (int b = 0; b < batch; ++b) {
    const double* src = x_->row(batch_rows_[b]);
    double* dst = xb_.row(b);
    for (int j = 0; j < d; ++j) dst[j] = src[j];
  }
  // residual = X_B W − X_B.
  MatmulInto(xb_, w, &residual_);
  residual_.AddScaled(xb_, -1.0);
  const double inv_b = 1.0 / batch;
  double smooth = 0.0;
  for (double v : residual_.data()) smooth += v * v;
  smooth *= inv_b;
  if (grad_out != nullptr) {
    LEAST_CHECK(grad_out->SameShape(w));
    // grad = (2/B) X_Bᵀ residual. Output rows are disjoint across i, and
    // each element accumulates its batch terms in the same b order as a
    // serial sweep, so the optional parallel split stays bitwise-identical.
    auto rows_kernel = [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        double* g_row = grad_out->row(static_cast<int>(i));
        for (int j = 0; j < d; ++j) g_row[j] = 0.0;
        for (int b = 0; b < batch; ++b) {
          const double xi = xb_(b, static_cast<int>(i));
          if (xi == 0.0) continue;
          const double* rrow = residual_.row(b);
          for (int j = 0; j < d; ++j) g_row[j] += xi * rrow[j];
        }
        for (int j = 0; j < d; ++j) g_row[j] *= 2.0 * inv_b;
      }
    };
    const int64_t flops = static_cast<int64_t>(d) * d * batch;
    MaybeParallelForFlops(flops, 0, d, /*grain=*/-1, rows_kernel);
  }
  return smooth;
}

}  // namespace least
