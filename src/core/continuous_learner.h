/// \file continuous_learner.h
/// \brief Dense augmented-Lagrangian structure learner (paper Fig. 3).
///
/// Solves  min_W L(W, X) + (ρ/2)·c(W)² + η·c(W)  over outer rounds that
/// grow ρ and update η ← η + ρ·c(W*), where c is any pluggable
/// `AcyclicityConstraint`. With the spectral bound this is LEAST (dense,
/// the LEAST-TF analog); with the expm-trace constraint it is the NOTEARS
/// baseline under an identical optimization harness, which is exactly the
/// fair-comparison setup of the paper's Section V.
///
/// Deviations from the paper's pseudocode, both deliberate:
///  * Fig. 3 line 1 re-initializes W inside INNER; we warm-start W across
///    outer rounds (re-initializing would discard all progress — standard
///    augmented-Lagrangian practice and what every NOTEARS implementation
///    does).
///  * Fig. 3 line 7 reads (ρ + δ(W))∇δ; the derivative of
///    (ρ/2)δ² + ηδ is (ρδ + η)∇δ, which is what we use.

#pragma once

#include <functional>
#include <memory>

#include "constraint/acyclicity_constraint.h"
#include "core/data_source.h"
#include "core/learn_options.h"
#include "core/least_squares_loss.h"
#include "core/train_state.h"

namespace least {

/// \brief Augmented-Lagrangian driver over a dense W.
///
/// Thread safety: `Fit` is `const` and reentrant. All per-run mutable state
/// (the optimizer's Adam moments, the RNG, the loss scratch buffers, W
/// itself) lives on the `Fit` stack, and `AcyclicityConstraint::Evaluate`
/// implementations are stateless, so one learner may serve concurrent `Fit`
/// calls from multiple fleet-scheduler threads; identical options + data
/// yield bitwise-identical results regardless of interleaving. The
/// setters (`set_snapshot_callback`, `set_stop_predicate`,
/// `set_checkpoint_callback`) are NOT synchronized — configure the learner
/// before sharing it, and make the callbacks themselves thread-safe when
/// `Fit` runs concurrently.
class ContinuousLearner {
 public:
  /// Called at the end of every outer round with the current raw W and the
  /// constraint value; used by the evaluation harness to snapshot W at
  /// tolerance crossings (the paper's ε grid search).
  using SnapshotCallback =
      std::function<void(int outer, const DenseMatrix& w, double constraint)>;

  /// Polled between optimization rounds; returning true makes `Fit` stop
  /// early with `kCancelled`. Used by the fleet runtime for cooperative
  /// job cancellation.
  using StopPredicate = std::function<bool()>;

  /// Receives a resumable `TrainState` at outer-round boundaries (see
  /// `set_checkpoint_callback`); the state may be serialized and later fed
  /// to `ResumeFit` — in this or another process.
  using CheckpointCallback = std::function<void(const TrainState&)>;

  /// Takes ownership of `constraint`.
  ContinuousLearner(std::unique_ptr<AcyclicityConstraint> constraint,
                    const LearnOptions& options);

  void set_snapshot_callback(SnapshotCallback cb) {
    snapshot_ = std::move(cb);
  }

  void set_stop_predicate(StopPredicate stop) { stop_ = std::move(stop); }

  /// Installs a periodic checkpoint sink: invoked at the top of an outer
  /// round whenever `every_n_outer` rounds have completed since the last
  /// snapshot point. The callback runs on the `Fit` thread.
  void set_checkpoint_callback(CheckpointCallback cb, int every_n_outer = 1) {
    LEAST_CHECK(every_n_outer >= 1);
    checkpoint_ = std::move(cb);
    checkpoint_every_ = every_n_outer;
  }

  /// Learns a weighted DAG from the n x d sample matrix.
  /// Fails with `kInvalidArgument` on shape errors; returns
  /// `kNotConverged` (with the best W found) when the constraint never
  /// reaches the tolerance within the outer-iteration budget, and
  /// `kCancelled` (again with the current W, plus a resumable
  /// `LearnResult::train_state`) when the stop predicate fires.
  LearnResult Fit(const DenseMatrix& x) const;

  /// Learns from a `DataSource`: the source is `Prepare()`d and its dense
  /// materialization fitted. Preparation/materialization failures (an
  /// unreadable or malformed lazy dataset) surface as the result's status.
  /// The dense handle is held for the duration of the fit.
  LearnResult Fit(const DataSource& data) const;

  /// Continues an interrupted run from `state` (a `train_state` captured by
  /// a cancelled `Fit`, or a periodic checkpoint). Given the same options
  /// and the same `x` the original run saw, the continuation is
  /// bit-identical to the uninterrupted run — same final weights, counts,
  /// and status. A state of the wrong kind or shape fails with
  /// `kInvalidArgument`.
  LearnResult ResumeFit(const TrainState& state, const DenseMatrix& x) const;

  /// `ResumeFit` over a `DataSource` (see the `Fit` overload above).
  LearnResult ResumeFit(const TrainState& state, const DataSource& data) const;

  const AcyclicityConstraint& constraint() const { return *constraint_; }
  const LearnOptions& options() const { return options_; }

 private:
  LearnResult FitInternal(const DenseMatrix& x, const TrainState* resume) const;

  std::unique_ptr<AcyclicityConstraint> constraint_;
  LearnOptions options_;
  SnapshotCallback snapshot_;
  StopPredicate stop_;
  CheckpointCallback checkpoint_;
  int checkpoint_every_ = 1;
};

}  // namespace least
