/// \file continuous_learner.h
/// \brief Dense augmented-Lagrangian structure learner (paper Fig. 3).
///
/// Solves  min_W L(W, X) + (ρ/2)·c(W)² + η·c(W)  over outer rounds that
/// grow ρ and update η ← η + ρ·c(W*), where c is any pluggable
/// `AcyclicityConstraint`. With the spectral bound this is LEAST (dense,
/// the LEAST-TF analog); with the expm-trace constraint it is the NOTEARS
/// baseline under an identical optimization harness, which is exactly the
/// fair-comparison setup of the paper's Section V.
///
/// Deviations from the paper's pseudocode, both deliberate:
///  * Fig. 3 line 1 re-initializes W inside INNER; we warm-start W across
///    outer rounds (re-initializing would discard all progress — standard
///    augmented-Lagrangian practice and what every NOTEARS implementation
///    does).
///  * Fig. 3 line 7 reads (ρ + δ(W))∇δ; the derivative of
///    (ρ/2)δ² + ηδ is (ρδ + η)∇δ, which is what we use.

#pragma once

#include <functional>
#include <memory>

#include "constraint/acyclicity_constraint.h"
#include "core/learn_options.h"
#include "core/least_squares_loss.h"

namespace least {

/// \brief Augmented-Lagrangian driver over a dense W.
///
/// Thread safety: `Fit` is `const` and reentrant. All per-run mutable state
/// (the optimizer's Adam moments, the RNG, the loss scratch buffers, W
/// itself) lives on the `Fit` stack, and `AcyclicityConstraint::Evaluate`
/// implementations are stateless, so one learner may serve concurrent `Fit`
/// calls from multiple fleet-scheduler threads; identical options + data
/// yield bitwise-identical results regardless of interleaving. The
/// setters (`set_snapshot_callback`, `set_stop_predicate`) are NOT
/// synchronized — configure the learner before sharing it, and make the
/// callbacks themselves thread-safe when `Fit` runs concurrently.
class ContinuousLearner {
 public:
  /// Called at the end of every outer round with the current raw W and the
  /// constraint value; used by the evaluation harness to snapshot W at
  /// tolerance crossings (the paper's ε grid search).
  using SnapshotCallback =
      std::function<void(int outer, const DenseMatrix& w, double constraint)>;

  /// Polled between optimization rounds; returning true makes `Fit` stop
  /// early with `kCancelled`. Used by the fleet runtime for cooperative
  /// job cancellation.
  using StopPredicate = std::function<bool()>;

  /// Takes ownership of `constraint`.
  ContinuousLearner(std::unique_ptr<AcyclicityConstraint> constraint,
                    const LearnOptions& options);

  void set_snapshot_callback(SnapshotCallback cb) {
    snapshot_ = std::move(cb);
  }

  void set_stop_predicate(StopPredicate stop) { stop_ = std::move(stop); }

  /// Learns a weighted DAG from the n x d sample matrix.
  /// Fails with `kInvalidArgument` on shape errors; returns
  /// `kNotConverged` (with the best W found) when the constraint never
  /// reaches the tolerance within the outer-iteration budget, and
  /// `kCancelled` (again with the current W) when the stop predicate fires.
  LearnResult Fit(const DenseMatrix& x) const;

  const AcyclicityConstraint& constraint() const { return *constraint_; }
  const LearnOptions& options() const { return options_; }

 private:
  std::unique_ptr<AcyclicityConstraint> constraint_;
  LearnOptions options_;
  SnapshotCallback snapshot_;
  StopPredicate stop_;
};

}  // namespace least
