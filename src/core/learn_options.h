/// \file learn_options.h
/// \brief Options and result types shared by the continuous structure
/// learners (LEAST dense/sparse and the NOTEARS baseline).

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "linalg/dense_matrix.h"
#include "util/status.h"

namespace least {

struct TrainState;  // core/train_state.h — mid-run checkpoint payload

/// \brief Hyper-parameters of the augmented-Lagrangian learner (Fig. 3 of
/// the paper). Defaults follow the paper's Section V settings.
struct LearnOptions {
  // --- Acyclicity bound (LEAST only; ignored by NOTEARS). ---
  int k = 5;           ///< tightening iterations of the spectral bound
  double alpha = 0.9;  ///< row/column balancing factor

  // --- Loss. ---
  double lambda1 = 0.1;  ///< L1 regularization weight λ

  // --- Optimizer (Adam, paper lr = 0.01). ---
  double learning_rate = 0.01;
  /// Geometric decay of the learning rate per outer round (floored at 5%
  /// of the base rate). Late rounds carry large penalty weights ρ; smaller
  /// steps lower Adam's oscillation floor on near-zero entries so the
  /// constraint can keep shrinking without eroding true edges.
  double lr_decay = 0.9;
  int batch_size = 0;  ///< B; 0 = full batch (paper: B = n on benchmarks)

  // --- Augmented Lagrangian schedule. ---
  double rho_init = 1.0;      ///< initial penalty ρ
  double eta_init = 1.0;      ///< initial multiplier η
  /// Penalty growth per outer round. The paper says "enlarge ρ by a small
  /// factor" with up to 1000 outer rounds; with the tighter outer budgets
  /// used here, the standard NOTEARS factor of 10 reaches the same terminal
  /// penalty in far fewer rounds.
  double rho_growth = 10.0;
  /// NOTEARS progress rule: ρ only grows when the constraint failed to
  /// shrink below `rho_progress_ratio` x its previous outer-round value.
  /// Prevents the dual variable from exploding on rounds where the
  /// constraint merely jitters around its floor.
  double rho_progress_ratio = 0.25;
  double rho_max = 1e16;      ///< penalty cap
  int max_outer_iterations = 100;  ///< T_o
  int max_inner_iterations = 200;  ///< T_i
  double tolerance = 1e-8;    ///< ε: stop when the constraint falls below

  // --- Inner-loop convergence. ---
  double inner_rtol = 1e-4;  ///< relative objective change declaring
                             ///< convergence of the INNER procedure
  int inner_check_every = 10;

  // --- Thresholding. ---
  /// θ: zero small |W| during optimization (paper Fig. 3 INNER line 9).
  /// The paper reports θ = 0 for the artificial benchmarks and 1e-3 at
  /// scale; this library defaults to 0.05 because with an Adam inner
  /// solver the θ-culling (after warmup, see below) is what lets the
  /// spectral bound reach exactly zero — parasite 2-cycle entries are
  /// removed instead of oscillating at the step-size floor. Benchmarks
  /// that replicate the paper's exact protocol override this to 0 and
  /// terminate on h(W) instead.
  double filter_threshold = 0.05;
  /// Outer rounds during which θ-filtering is suspended. Entries grow from
  /// zero one optimizer step at a time, so filtering from the very first
  /// round would strangle every edge whose per-step growth is below θ;
  /// after warmup, true edges sit far above θ while cycle-inducing
  /// parasites (bounded by the decayed step size) are culled for good.
  int threshold_warmup_rounds = 2;
  double prune_threshold = 0.3;   ///< τ: final pruning of the returned W

  // --- Sparse learner (LEAST-SP) only. ---
  double init_density = 1e-4;  ///< ζ: density of the random initial pattern

  // --- Misc. ---
  uint64_t seed = 1;
  bool verbose = false;
  /// Also evaluate the exact NOTEARS h(W) at the end of every outer round
  /// (dense learner only; used by the Fig. 4 correlation study and by the
  /// paper's modified termination rule).
  bool track_exact_h = false;
  /// Terminate when h(W) <= tolerance *instead of* testing the spectral
  /// bound (requires `track_exact_h`). This is the paper's Section V-A
  /// setup: "at the end of each outer loop, we also compute the value of
  /// h(W) and terminate when h(W) is smaller than the tolerance ε". It
  /// matters because δ̄ is non-Lipschitz in near-zero entries — a parasite
  /// 2-cycle edge at Adam's oscillation floor keeps δ̄ ~ |w|^{2(1-α)}
  /// large even when the graph is effectively acyclic, while h sees the
  /// *product* of the cycle weights and vanishes quadratically. The sparse
  /// learner instead relies on θ-thresholding + pattern compaction, which
  /// removes such entries outright (paper Section IV).
  bool terminate_on_h = false;
  /// Estimate h(W) via Hutchinson sparse trace estimation per outer round
  /// (sparse learner; powers the Fig. 5 curves).
  bool track_estimated_h = false;
};

/// One record per outer iteration, for convergence curves (Fig. 5) and the
/// δ̄-vs-h correlation study (Fig. 4 row 3).
struct TracePoint {
  int outer = 0;
  double seconds = 0.0;          ///< wall time since Fit() started
  double constraint_value = 0.0; ///< δ̄(W) (LEAST) or h(W) (NOTEARS)
  double loss = 0.0;             ///< data loss incl. L1 term
  double h_value = -1.0;         ///< exact/estimated h(W); -1 if untracked
  int64_t nnz = 0;               ///< support size of W at that point
};

/// \brief Outcome of a structure-learning run.
struct LearnResult {
  Status status;              ///< OK, or kNotConverged with diagnostics
  DenseMatrix weights;        ///< learned W after final τ-pruning
  DenseMatrix raw_weights;    ///< W before final pruning
  double constraint_value = 0.0;  ///< constraint at exit
  int outer_iterations = 0;
  long long inner_iterations = 0;
  double seconds = 0.0;
  std::vector<TracePoint> trace;
  /// Set on `kCancelled`: resumable snapshot of the interrupted run (see
  /// `core/train_state.h`); null on every other status.
  std::shared_ptr<const TrainState> train_state;
};

}  // namespace least
