#include "core/train_state.h"

#include "opt/adam.h"
#include "util/rng.h"

namespace least {

std::shared_ptr<TrainState> CaptureTrainState(
    const Adam* adam, double rho, double eta, double prev_round_constraint,
    int outer, int inner_steps, double prev_objective, double last_loss,
    double constraint_value, long long total_inner,
    const std::vector<TracePoint>& trace, double elapsed_seconds,
    const Rng& rng) {
  auto state = std::make_shared<TrainState>();
  if (adam != nullptr) {
    AdamState a = adam->Snapshot();
    state->adam_m = std::move(a.m);
    state->adam_v = std::move(a.v);
    state->adam_t = a.t;
  }
  state->rho = rho;
  state->eta = eta;
  state->prev_round_constraint = prev_round_constraint;
  state->outer = outer;
  state->inner_steps = inner_steps;
  state->prev_objective = prev_objective;
  state->last_loss = last_loss;
  state->constraint_value = constraint_value;
  state->total_inner = total_inner;
  state->trace = trace;
  state->elapsed_seconds = elapsed_seconds;
  state->rng_state = rng.SaveState();
  return state;
}

}  // namespace least
