/// \file least_squares_loss.h
/// \brief The paper's loss (Section IV): L(W, X) = (1/n)‖X − XW‖²_F + λ‖W‖₁.
///
/// Full-batch evaluation uses the precomputed Gram matrix G = XᵀX:
///   smooth loss = (Tr G − 2⟨G, W⟩ + ⟨W, GW⟩) / n,  ∇ = (2/n)(GW − G),
/// which costs O(d³) per step instead of O(n d²) — a large win when n = 10d.
/// Mini-batch evaluation (B rows drawn fresh each step, paper Fig. 3 INNER
/// line 5) computes R = X_B W − X_B directly. The L1 term contributes the
/// subgradient λ·sign(W) with sign(0) = 0.
///
/// Both gradient kernels split across the optional global `ParallelExecutor`
/// (see `linalg/parallel.h`) on large problems, and the ⟨G,W⟩ / ⟨W,GW⟩ and
/// ‖R‖² dots run through the deterministic chunk-tree reductions; results
/// are bitwise identical with and without an executor.
///
/// All persistent buffers (Gram, GW, batch slab, residual) come from the
/// caller's `Workspace` when one is provided, so constructing a loss inside
/// a `Fit` adds nothing to the iteration-time allocation count and reuses
/// the learner's arena across rounds.

#pragma once

#include "core/learn_options.h"
#include "linalg/dense_matrix.h"
#include "linalg/workspace.h"
#include "util/rng.h"

namespace least {

/// \brief Dense least-squares loss with optional mini-batching.
///
/// Borrows the sample matrix; the caller keeps it alive for the lifetime of
/// the loss object. When `ws` is given, the loss checks its buffers out of
/// it for its whole lifetime — the caller must keep the workspace alive and
/// must not `Reset()` it while the loss lives (scoped checkouts opened
/// *after* construction are fine).
class LeastSquaresLoss {
 public:
  /// `batch_size` 0 (or >= n) selects the full-batch Gram path.
  LeastSquaresLoss(const DenseMatrix* x, double lambda1, int batch_size,
                   Workspace* ws = nullptr);

  /// Returns the loss at `w` and, when `grad_out` is non-null (same shape
  /// as w), writes the (sub)gradient. Mini-batch mode draws a fresh batch
  /// from `rng` per call, so consecutive calls see different noise.
  double ValueAndGradient(const DenseMatrix& w, DenseMatrix* grad_out,
                          Rng& rng);

  int num_samples() const { return x_->rows(); }
  int dim() const { return x_->cols(); }
  bool full_batch() const { return batch_size_ <= 0; }

 private:
  double FullBatch(const DenseMatrix& w, DenseMatrix* grad_out);
  double MiniBatch(const DenseMatrix& w, DenseMatrix* grad_out, Rng& rng);

  const DenseMatrix* x_;
  double lambda1_;
  int batch_size_;

  Workspace own_ws_;  // used when the caller does not supply a workspace

  // Full-batch cache (workspace checkouts, held for the loss's lifetime).
  DenseMatrix* gram_ = nullptr;  // XᵀX
  double trace_gram_ = 0;        // Tr(XᵀX)
  // Scratch (kept across calls to avoid reallocation).
  DenseMatrix* gw_ = nullptr;        // G * W
  DenseMatrix* xb_ = nullptr;        // batch rows (B x d)
  DenseMatrix* residual_ = nullptr;  // X_B W − X_B
  std::vector<int>* batch_rows_ = nullptr;
};

/// Adds λ·sign(w) into `grad` and returns λ‖w‖₁ (shared by both paths).
/// Runs as a deterministic chunked reduction whose chunks also write the
/// disjoint `grad` ranges (pure partition).
double AddL1Subgradient(const DenseMatrix& w, double lambda1,
                        DenseMatrix* grad);

}  // namespace least
