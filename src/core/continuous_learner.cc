#include "core/continuous_learner.h"

#include <cmath>
#include <cstdio>

#include "constraint/expm_trace.h"
#include "opt/adam.h"
#include "util/stopwatch.h"

namespace least {

ContinuousLearner::ContinuousLearner(
    std::unique_ptr<AcyclicityConstraint> constraint,
    const LearnOptions& options)
    : constraint_(std::move(constraint)), options_(options) {
  LEAST_CHECK(constraint_ != nullptr);
}

LearnResult ContinuousLearner::Fit(const DenseMatrix& x) const {
  return FitInternal(x, nullptr);
}

namespace {

// Prepares a source and materializes its dense view; on failure fills
// `result` with the error and returns null.
std::shared_ptr<const DenseMatrix> MaterializeDense(const DataSource& data,
                                                    LearnResult* result) {
  const Status prepared = data.Prepare();
  if (!prepared.ok()) {
    result->status = prepared;
    return nullptr;
  }
  Result<std::shared_ptr<const DenseMatrix>> dense = data.Dense();
  if (!dense.ok()) {
    result->status = dense.status();
    return nullptr;
  }
  return std::move(dense).value();
}

}  // namespace

LearnResult ContinuousLearner::Fit(const DataSource& data) const {
  LearnResult result;
  std::shared_ptr<const DenseMatrix> x = MaterializeDense(data, &result);
  if (x == nullptr) return result;
  return FitInternal(*x, nullptr);
}

LearnResult ContinuousLearner::ResumeFit(const TrainState& state,
                                         const DataSource& data) const {
  LearnResult result;
  std::shared_ptr<const DenseMatrix> x = MaterializeDense(data, &result);
  if (x == nullptr) return result;
  return ResumeFit(state, *x);
}

LearnResult ContinuousLearner::ResumeFit(const TrainState& state,
                                         const DenseMatrix& x) const {
  LearnResult result;
  if (state.sparse) {
    result.status = Status::InvalidArgument(
        "cannot resume a dense learner from a sparse train state");
    return result;
  }
  if (state.dense_w.rows() != x.cols() || state.dense_w.cols() != x.cols()) {
    result.status = Status::InvalidArgument(
        "train state shape does not match the sample matrix");
    return result;
  }
  if (state.outer < 1 || state.inner_steps < 0) {
    result.status = Status::InvalidArgument("corrupt train state indices");
    return result;
  }
  if (state.inner_steps > 0 &&
      (state.adam_m.size() != state.dense_w.size() ||
       state.adam_m.size() != state.adam_v.size())) {
    result.status = Status::InvalidArgument(
        "train state Adam moments do not match the weight matrix");
    return result;
  }
  return FitInternal(x, &state);
}

LearnResult ContinuousLearner::FitInternal(const DenseMatrix& x,
                                           const TrainState* resume) const {
  LearnResult result;
  if (x.rows() == 0 || x.cols() == 0) {
    result.status = Status::InvalidArgument("empty sample matrix");
    return result;
  }
  const int d = x.cols();
  const LearnOptions& opt = options_;
  Stopwatch watch;
  Rng rng(opt.seed);

  // Per-Fit scratch arena: the loss checks its persistent buffers out here,
  // and every constraint evaluation draws its temporaries from scoped
  // checkouts above them — steady-state iterations allocate nothing (the
  // zero-allocation proof lives in tests/test_workspace.cc). Local to the
  // call, so Fit stays const + reentrant.
  Workspace ws;
  LeastSquaresLoss loss(&x, opt.lambda1, opt.batch_size, &ws);
  ExpmTraceConstraint exact_h;  // optional tracker (small d only)

  DenseMatrix w(d, d);
  if (resume == nullptr) {
    if (opt.init_density > 0.0 && opt.init_density < 1.0) {
      // Glorot-uniform values on a random sparse support (paper Fig. 3
      // INNER line 1); the mass vanishes for tiny ζ·d², which reduces to the
      // standard zero start used by NOTEARS.
      const long long cells = static_cast<long long>(d) * (d - 1);
      long long want = static_cast<long long>(opt.init_density * cells);
      for (long long t = 0; t < want; ++t) {
        const int i = rng.UniformInt(d);
        const int j = rng.UniformInt(d);
        if (i != j) w(i, j) = rng.GlorotUniform(d, d);
      }
    }
  }

  DenseMatrix loss_grad(d, d);
  DenseMatrix constraint_grad(d, d);

  double rho = opt.rho_init;
  double eta = opt.eta_init;
  double constraint_value = 0.0;
  double prev_round_constraint = std::numeric_limits<double>::infinity();
  int start_outer = 1;
  double time_offset = 0.0;
  bool resume_mid_round = false;

  if (resume != nullptr) {
    // The RNG state is the linchpin: it encodes the init draws and every
    // mini-batch drawn so far, so the continuation consumes the exact
    // stream the uninterrupted run would have.
    if (!rng.LoadState(resume->rng_state)) {
      result.status = Status::InvalidArgument(
          "train state carries an unparsable RNG state");
      return result;
    }
    w = resume->dense_w;
    rho = resume->rho;
    eta = resume->eta;
    prev_round_constraint = resume->prev_round_constraint;
    constraint_value = resume->constraint_value;
    start_outer = resume->outer;
    resume_mid_round = resume->inner_steps > 0;
    time_offset = resume->elapsed_seconds;
    result.trace = resume->trace;
    result.inner_iterations = resume->total_inner;
    result.outer_iterations = resume->outer - 1;
  }

  const bool use_h_termination = opt.terminate_on_h && opt.track_exact_h;
  bool converged = false;

  // One optimizer hoisted out of the round loop; each round re-initializes
  // it in place (same semantics as a fresh Adam, without the per-round
  // moment-buffer allocation).
  Adam adam(0);

  // Cooperative cancellation: polled between rounds and at the inner
  // convergence-check cadence, so a fleet Cancel() interrupts within a few
  // optimizer steps instead of after a full Fit. Every poll site is also a
  // snapshot site: the returned result carries a TrainState from which
  // ResumeFit continues bit-identically.
  auto stop_requested = [this]() { return stop_ != nullptr && stop_(); };
  auto make_state = [&](int outer, int inner_steps, const Adam* adam,
                        double prev_objective, double last_loss) {
    auto state = CaptureTrainState(
        adam, rho, eta, prev_round_constraint, outer, inner_steps,
        prev_objective, last_loss, constraint_value, result.inner_iterations,
        result.trace, time_offset + watch.Seconds(), rng);
    state->sparse = false;
    state->dense_w = w;
    return state;
  };
  auto cancelled_result = [&](int outer,
                              std::shared_ptr<const TrainState> state) {
    result.status = Status::Cancelled("stop requested at outer round " +
                                      std::to_string(outer));
    result.train_state = std::move(state);
    result.raw_weights = w;
    result.weights = w;
    result.weights.ApplyThreshold(opt.prune_threshold);
    result.constraint_value = constraint_value;
    result.seconds = time_offset + watch.Seconds();
    return std::move(result);
  };

  for (int outer = start_outer; outer <= opt.max_outer_iterations; ++outer) {
    const bool resuming_here = resume_mid_round && outer == start_outer;
    if (!resuming_here) {
      if (stop_requested()) {
        return cancelled_result(
            outer, make_state(outer, 0, nullptr,
                              std::numeric_limits<double>::infinity(), 0.0));
      }
      if (checkpoint_ != nullptr && outer > 1 &&
          (outer - 1) % checkpoint_every_ == 0) {
        checkpoint_(*make_state(outer, 0, nullptr,
                                std::numeric_limits<double>::infinity(), 0.0));
      }
    }
    const double lr = std::max(
        opt.learning_rate * std::pow(opt.lr_decay, outer - 1),
        0.05 * opt.learning_rate);
    adam.Reinitialize(w.size(), {.learning_rate = lr});
    double prev_objective = std::numeric_limits<double>::infinity();
    double last_loss = 0.0;
    int inner_done = 0;
    int inner_start = 1;
    if (resuming_here) {
      adam.Restore({resume->adam_m, resume->adam_v, resume->adam_t});
      prev_objective = resume->prev_objective;
      last_loss = resume->last_loss;
      inner_done = resume->inner_steps;
      inner_start = resume->inner_steps + 1;
    }
    for (int inner = inner_start; inner <= opt.max_inner_iterations; ++inner) {
      constraint_value = constraint_->Evaluate(w, &constraint_grad, &ws);
      const double loss_value = loss.ValueAndGradient(w, &loss_grad, rng);
      const double objective = loss_value +
                               0.5 * rho * constraint_value * constraint_value +
                               eta * constraint_value;
      if (!std::isfinite(objective)) {
        result.status = Status::NotConverged(
            "objective diverged (non-finite) at outer round " +
            std::to_string(outer));
        result.raw_weights = w;
        result.weights = w;
        result.weights.ApplyThreshold(opt.prune_threshold);
        result.seconds = time_offset + watch.Seconds();
        return result;
      }
      // ∇ℓ = ∇L + (ρ·δ + η)·∇δ   (see header note on the Fig. 3 typo).
      loss_grad.AddScaled(constraint_grad, rho * constraint_value + eta);
      adam.Step(w.data(), loss_grad.data());
      w.FillDiagonal(0.0);  // no self-loops
      if (outer > opt.threshold_warmup_rounds) {
        w.ApplyThreshold(opt.filter_threshold);
      }
      last_loss = loss_value;
      ++inner_done;
      if (inner % opt.inner_check_every == 0) {
        const double rel = std::fabs(objective - prev_objective) /
                           std::max(1.0, std::fabs(prev_objective));
        if (rel < opt.inner_rtol) break;
        prev_objective = objective;
        // Polled after the convergence bookkeeping so a snapshot taken here
        // re-enters the loop at inner + 1 with no replayed work.
        if (stop_requested()) {
          return cancelled_result(
              outer, make_state(outer, inner, &adam, prev_objective,
                                last_loss));
        }
      }
    }
    result.inner_iterations += inner_done;
    result.outer_iterations = outer;

    // Re-evaluate the constraint after the final inner step.
    constraint_value = constraint_->Evaluate(w, nullptr, &ws);

    TracePoint tp;
    tp.outer = outer;
    tp.seconds = time_offset + watch.Seconds();
    tp.constraint_value = constraint_value;
    tp.loss = last_loss;
    tp.nnz = w.CountNonZeros();
    if (opt.track_exact_h) {
      tp.h_value = exact_h.Evaluate(w, nullptr, &ws);
    }
    result.trace.push_back(tp);
    if (snapshot_) snapshot_(outer, w, constraint_value);
    if (opt.verbose) {
      std::fprintf(stderr,
                   "[%s] outer=%d inner=%d constraint=%.3e loss=%.4f "
                   "rho=%.1e t=%.1fs\n",
                   std::string(constraint_->name()).c_str(), outer,
                   inner_done, constraint_value, last_loss, rho,
                   tp.seconds);
    }

    // Termination: on h(W) when configured (the paper's benchmark rule),
    // otherwise on the learner's own constraint value.
    const bool met = use_h_termination
                         ? (tp.h_value >= 0.0 && tp.h_value <= opt.tolerance)
                         : constraint_value <= opt.tolerance;
    if (met) {
      converged = true;
      break;
    }

    // Dual update, then penalty growth under the progress rule
    // (paper Fig. 3 lines 4–5 plus the standard NOTEARS refinement).
    eta += rho * constraint_value;
    if (constraint_value > opt.rho_progress_ratio * prev_round_constraint) {
      rho = std::min(rho * opt.rho_growth, opt.rho_max);
    }
    prev_round_constraint = constraint_value;
  }

  result.raw_weights = w;
  w.ApplyThreshold(opt.prune_threshold);
  result.weights = std::move(w);
  result.constraint_value = constraint_value;
  result.seconds = time_offset + watch.Seconds();
  if (converged) {
    result.status = Status::Ok();
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3e", constraint_value);
    result.status = Status::NotConverged(
        std::string("constraint ") + buf + " above tolerance after " +
        std::to_string(result.outer_iterations) + " outer rounds");
  }
  return result;
}

}  // namespace least
