/// \file train_state.h
/// \brief Mid-run optimizer state for checkpoint/resume of the learners.
///
/// A `TrainState` is everything a learner needs to continue an interrupted
/// `Fit` and reach a final W that is **bit-identical** to the uninterrupted
/// run: the working weights (dense or CSR), the Adam moments and step
/// counter, the augmented-Lagrangian ρ/η schedule, the loop position, the
/// accumulated trace, and the exact RNG stream position. States are captured
/// at the cooperative cancellation points (outer-round boundaries and the
/// inner convergence-check cadence), so resuming re-enters the optimization
/// at precisely the step where the stop predicate fired.
///
/// Contract: `ResumeFit` must be given the same `LearnOptions` and the same
/// data the original run used — the state stores *position*, not inputs.
/// States round-trip through `io/model_serializer.h` (format v2) so a
/// cancelled fleet job can resume in another process.

#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/learn_options.h"
#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"

namespace least {

class Adam;  // opt/adam.h
class Rng;   // util/rng.h

/// \brief Serializable snapshot of an in-flight structure-learning run.
struct TrainState {
  /// Which learner family produced the state (selects the W field below).
  bool sparse = false;
  DenseMatrix dense_w;  ///< working W of the dense learners
  CsrMatrix sparse_w;   ///< working W (pattern + values) of LEAST-SP

  // Adam state of the current outer round (empty when the state was taken
  // at a round boundary, where the uninterrupted run builds a fresh Adam).
  std::vector<double> adam_m;
  std::vector<double> adam_v;
  int64_t adam_t = 0;

  // Augmented-Lagrangian schedule.
  double rho = 0.0;
  double eta = 0.0;
  double prev_round_constraint = std::numeric_limits<double>::infinity();

  // Loop position: `outer` is the round being executed (1-based);
  // `inner_steps` counts optimizer steps already taken inside it, 0 meaning
  // the state was captured at the top of the round.
  int outer = 1;
  int inner_steps = 0;
  double prev_objective = std::numeric_limits<double>::infinity();
  double last_loss = 0.0;
  double constraint_value = 0.0;
  long long total_inner = 0;  ///< inner steps accumulated by completed rounds

  std::vector<TracePoint> trace;  ///< per-round trace up to the snapshot
  double elapsed_seconds = 0.0;   ///< wall time consumed before the snapshot
  std::string rng_state;          ///< textual mt19937_64 state (Rng::SaveState)
};

/// Fills every learner-agnostic field of a snapshot — Adam moments (when a
/// round is in flight), schedule scalars, loop position, accumulated trace,
/// elapsed time, and the RNG stream. Both learners' capture paths go
/// through this so the common fields can never drift; the caller sets only
/// the W field (`dense_w` or `sparse_w`) and the `sparse` flag.
std::shared_ptr<TrainState> CaptureTrainState(
    const Adam* adam, double rho, double eta, double prev_round_constraint,
    int outer, int inner_steps, double prev_objective, double last_loss,
    double constraint_value, long long total_inner,
    const std::vector<TracePoint>& trace, double elapsed_seconds,
    const Rng& rng);

}  // namespace least
