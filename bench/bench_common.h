/// \file bench_common.h
/// \brief Shared helpers for the paper-reproduction benchmark harnesses.
///
/// Every harness prints the rows/series of one table or figure from the
/// paper. Sizes default to a single-core-friendly scale and grow via:
///   LEAST_BENCH_SCALE=<double>   fraction of the paper's full size
///   LEAST_BENCH_FULL=1           shorthand for scale = 1
///   LEAST_BENCH_SEEDS=<int>      seeds per configuration (default 1)

#pragma once

#include <string>
#include <vector>

#include "core/least.h"
#include "core/learn_options.h"
#include "linalg/dense_matrix.h"
#include "metrics/structure_metrics.h"
#include "util/env.h"

namespace least::bench {

/// Workload scale factor from the environment.
inline double Scale(double fallback) {
  if (EnvFlag("LEAST_BENCH_FULL")) return 1.0;
  return EnvDouble("LEAST_BENCH_SCALE", fallback);
}

/// Seeds per configuration.
inline int Seeds(int fallback = 1) {
  return EnvInt("LEAST_BENCH_SEEDS", fallback);
}

/// \brief Outcome of the paper's Section V-A evaluation protocol.
struct ProtocolResult {
  StructureMetrics metrics;  ///< best-F1 metrics over the (ε, τ) grid
  double auc = 0.5;          ///< AUC-ROC of the chosen snapshot (pre-prune)
  double best_epsilon = 0.0;
  double best_tau = 0.0;
  double seconds = 0.0;      ///< wall time of the underlying single run
  int outer_iterations = 0;
  LearnResult run;           ///< full result (trace etc.)
};

/// \brief Runs a learner with the paper's protocol: one optimization to the
/// tightest tolerance, snapshots of W at every ε crossing of the grid
/// {1e-1, 1e-2, 1e-3, 1e-4}, then a grid search over pruning thresholds
/// τ ∈ {0.1..0.5}; the best F1 against `w_true` is reported ("we apply a
/// grid search for the two hyper-parameters ε and τ and report the result
/// of the best case").
///
/// `algorithm` is "least" or "notears". For LEAST, h(W) is tracked exactly
/// and used both for the ε grid and for termination (the paper's modified
/// termination rule); for NOTEARS the constraint already is h(W).
ProtocolResult RunPaperProtocol(const DenseMatrix& x,
                                const DenseMatrix& w_true,
                                const std::string& algorithm,
                                LearnOptions options);

/// Prints a standard harness banner with the active scale.
void PrintBanner(const std::string& what, double scale);

}  // namespace least::bench
