#include "bench_common.h"

#include <cstdio>
#include <map>

namespace least::bench {

ProtocolResult RunPaperProtocol(const DenseMatrix& x,
                                const DenseMatrix& w_true,
                                const std::string& algorithm,
                                LearnOptions options) {
  const std::vector<double> epsilon_grid = {1e-1, 1e-2, 1e-3, 1e-4};
  const std::vector<double> tau_grid = {0.1, 0.2, 0.3, 0.4, 0.5};

  const bool is_least = algorithm == "least";
  options.tolerance = epsilon_grid.back();
  if (is_least) {
    options.track_exact_h = true;
    options.terminate_on_h = true;
    // The paper reports θ = 0 for the artificial benchmarks, but with an
    // Adam inner solver the θ-culling (library default 0.05) is what keeps
    // the non-Lipschitz bound from squeezing true edges; see
    // learn_options.h and EXPERIMENTS.md. Callers can still force θ = 0.
  } else {
    options.filter_threshold = 0.0;  // NOTEARS has no thresholding step
  }

  ContinuousLearner learner =
      is_least ? MakeLeastDenseLearner(options) : MakeNotearsLearner(options);
  std::map<int, DenseMatrix> snapshots;  // outer round -> W copy
  learner.set_snapshot_callback(
      [&snapshots](int outer, const DenseMatrix& w, double) {
        snapshots.emplace(outer, w);
      });

  ProtocolResult result;
  result.run = learner.Fit(x);
  result.seconds = result.run.seconds;
  result.outer_iterations = result.run.outer_iterations;

  // h value per outer round: tracked exactly for LEAST, equal to the
  // constraint for NOTEARS.
  auto h_at = [&](const TracePoint& tp) {
    return is_least ? tp.h_value : tp.constraint_value;
  };

  // First crossing of each ε; fall back to the final round.
  std::vector<int> crossing_outers;
  for (double eps : epsilon_grid) {
    int found = -1;
    for (const TracePoint& tp : result.run.trace) {
      if (h_at(tp) >= 0.0 && h_at(tp) <= eps) {
        found = tp.outer;
        break;
      }
    }
    if (found < 0 && !result.run.trace.empty()) {
      found = result.run.trace.back().outer;
    }
    crossing_outers.push_back(found);
  }

  double best_f1 = -1.0;
  for (size_t e = 0; e < epsilon_grid.size(); ++e) {
    const int outer = crossing_outers[e];
    auto it = snapshots.find(outer);
    if (it == snapshots.end()) continue;
    for (double tau : tau_grid) {
      DenseMatrix pruned = it->second;
      pruned.ApplyThreshold(tau);
      StructureMetrics m = EvaluateStructure(w_true, pruned);
      if (m.f1 > best_f1) {
        best_f1 = m.f1;
        result.metrics = m;
        result.best_epsilon = epsilon_grid[e];
        result.best_tau = tau;
        result.auc = EdgeAucRoc(w_true, it->second);
      }
    }
  }
  return result;
}

void PrintBanner(const std::string& what, double scale) {
  std::printf("=== %s ===\n", what.c_str());
  std::printf(
      "scale=%.3g (set LEAST_BENCH_SCALE or LEAST_BENCH_FULL=1 for larger "
      "runs; LEAST_BENCH_SEEDS for more seeds)\n\n",
      scale);
}

}  // namespace least::bench
