// Reproduces Table II and Fig. 7 (paper Section VI-A): the ticket-booking
// monitoring pipeline. Simulated Fliggy-style logs receive injected
// root-cause scenarios; a BN is learned on the monitored window with LEAST
// and anomalous cause paths are reported with p-values, then scored
// against the injected ground truth (the Fig. 7 true/false-positive
// breakdown — the paper reports 97% TP / 3% FP from manual review).

#include <cstdio>

#include "bench_common.h"
#include "core/least.h"
#include "data/booking_simulator.h"
#include "rca/root_cause.h"
#include "sem/lsem_sampler.h"
#include "util/table_printer.h"

namespace least::bench {
namespace {

int Run() {
  const double scale = Scale(0.5);
  PrintBanner("Table II + Fig. 7: booking anomaly root-cause analysis",
              scale);

  int total_tp = 0, total_fp = 0, total_found = 0, total_scenarios = 0;
  TablePrinter table({"case", "identified anomaly path", "p-value",
                      "support T / T'", "injected event"});
  const int cases = std::max(1, static_cast<int>(4 * scale));
  for (int c = 0; c < cases; ++c) {
    BookingConfig cfg;
    cfg.records_previous = static_cast<int>(20000 * std::min(1.0, scale));
    cfg.records_current = cfg.records_previous;
    cfg.num_anomalies = 3;
    cfg.seed = 101 + c;
    BookingDataset ds = SimulateBookingLogs(cfg);

    // Learn the BN on the monitored window (paper: every half hour on the
    // last 24h of logs; LEAST finishes in 2–3 minutes at production size).
    DenseMatrix x = ds.current;
    CenterColumns(&x);
    LearnOptions opt;
    opt.lambda1 = 0.003;
    opt.learning_rate = 0.03;
    opt.filter_threshold = 0.01;
    opt.prune_threshold = 0.02;
    opt.max_outer_iterations = 30;
    opt.max_inner_iterations = 600;
    opt.tolerance = 1e-8;
    LearnResult learned = FitLeastDense(x, opt);

    RcaOptions rca;
    rca.edge_tolerance = 0.02;
    rca.p_value_threshold = 1e-6;
    auto reports = DetectAnomalies(learned.raw_weights, ds.error_nodes,
                                   ds.current, ds.previous, rca);
    RcaEvaluation eval = EvaluateReports(reports, ds.injected);
    total_tp += eval.true_positives;
    total_fp += eval.false_positives;
    total_found += eval.scenarios_found;
    total_scenarios += eval.scenarios_total;

    int shown = 0;
    for (const AnomalyReport& report : reports) {
      if (shown++ >= 3) break;  // top three per case, like Table II rows
      // Attribute the report to an injected event if one matches.
      std::string event = "(unmatched)";
      for (const AnomalyScenario& sc : ds.injected) {
        if (report.path.back() != sc.error_step) continue;
        for (int node : sc.condition_nodes) {
          if (std::find(report.path.begin(), report.path.end(), node) !=
              report.path.end()) {
            event = sc.description;
            break;
          }
        }
      }
      char pval[32];
      std::snprintf(pval, sizeof(pval), "%.1e", report.p_value);
      table.AddRow({"case-" + std::to_string(c + 1),
                    report.Format(ds.node_names), pval,
                    std::to_string(report.support_current) + " / " +
                        std::to_string(report.support_previous),
                    event});
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  const int total_reports = total_tp + total_fp;
  std::printf("Fig. 7 analog: %d reports -> %.0f%% true positives, %.0f%% "
              "false positives; %d/%d injected scenarios recovered.\n",
              total_reports,
              total_reports ? 100.0 * total_tp / total_reports : 0.0,
              total_reports ? 100.0 * total_fp / total_reports : 0.0,
              total_found, total_scenarios);
  std::printf(
      "Paper reference: 97%% of reported cases were true positives, 3%% "
      "false alarms.\n");
  return 0;
}

}  // namespace
}  // namespace least::bench

int main() { return least::bench::Run(); }
