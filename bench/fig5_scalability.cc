// Reproduces Fig. 5 (paper Section V-B): convergence of the spectral bound
// δ̄(W) and the (estimated) NOTEARS constraint h(W) against wall time for
// LEAST-SP on three large sparse workloads shaped like the paper's
// Movielens (27,278 nodes), App-Security (91,850) and App-Recom (159,008)
// datasets. The proprietary datasets are replaced by sparse LSEM stand-ins
// of the same shape (DESIGN.md §4); h(W) at this scale is estimated by
// Hutchinson stochastic trace estimation, since no dense e^S can exist.
//
// Expected shape (paper): both curves decrease together to ~1e-8-ish
// levels; LEAST-SP handles all three sizes. NOTEARS cannot run at all at
// these sizes (a dense d x d alone would be tens of gigabytes).

#include <cstdio>

#include "bench_common.h"
#include "core/least_sparse.h"
#include "data/streaming_lsem.h"
#include "graph/graph_generator.h"
#include "util/table_printer.h"

namespace least::bench {
namespace {

struct Dataset {
  const char* name;
  int full_nodes;
  int full_samples;
};

int Run() {
  const double scale = Scale(0.02);
  PrintBanner("Fig. 5: LEAST-SP scalability on large sparse workloads",
              scale);

  const std::vector<Dataset> datasets = {
      {"Movielens-like", 27278, 138493},
      {"App-Security-like", 91850, 1000000},
      {"App-Recom-like", 159008, 584871},
  };

  for (const Dataset& ds : datasets) {
    const int d = std::max(400, static_cast<int>(ds.full_nodes * scale));
    const int n = std::max(10000, static_cast<int>(ds.full_samples * scale));
    std::printf("--- %s: d = %d (full %d), n = %d (full %d) ---\n", ds.name,
                d, ds.full_nodes, n, ds.full_samples);

    Rng rng(29);
    CsrMatrix w_true =
        SparseRandomDagWeights(GraphType::kScaleFree, d, 4.0, rng);
    LsemOptions sem;
    StreamingLsemSource source(w_true, n, sem, /*base_seed=*/71);

    LearnOptions opt;
    opt.batch_size = 512;              // paper: B = 1000 on a larger box
    opt.filter_threshold = 0.02;       // paper: θ = 1e-3 (see DESIGN.md)
    opt.tolerance = 1e-8;              // paper: ε = 1e-8
    opt.lambda1 = 0.05;
    opt.learning_rate = 0.03;
    opt.max_outer_iterations = 10;
    opt.max_inner_iterations = 60;
    opt.track_estimated_h = true;
    opt.init_density = 1e-4;

    // Candidate support: the true edges plus an equal volume of random
    // decoys (the ζ-density random pattern alone would carry no signal at
    // reduced scale; at the paper's full 1e5-node scale ζ d² is plenty).
    std::vector<std::pair<int, int>> candidates;
    for (int i = 0; i < d; ++i) {
      for (int64_t e = w_true.row_ptr()[i]; e < w_true.row_ptr()[i + 1];
           ++e) {
        candidates.push_back({i, w_true.col_idx()[e]});
      }
    }
    const size_t true_edges = candidates.size();
    for (size_t t = 0; t < true_edges; ++t) {
      const int i = rng.UniformInt(d);
      const int j = rng.UniformInt(d);
      if (i != j) candidates.push_back({i, j});
    }

    LeastSparseLearner learner(opt);
    learner.set_candidate_edges(std::move(candidates));
    SparseLearnResult r = learner.Fit(source);

    TablePrinter table({"time (s)", "spectral bound", "h(W) est.", "nnz(W)"});
    for (const TracePoint& tp : r.trace) {
      table.AddRow({TablePrinter::Fmt(tp.seconds, 2),
                    TablePrinter::Fmt(tp.constraint_value, 8),
                    tp.h_value >= 0.0 ? TablePrinter::Fmt(tp.h_value, 8)
                                      : "-",
                    TablePrinter::Fmt(static_cast<long long>(tp.nnz))});
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("status: %s, total %.1fs\n\n", r.status.ToString().c_str(),
                r.seconds);
  }
  std::printf(
      "Paper reference: bound and h fall together to ~1e-8; full-size runs "
      "took 89.4h / 67.2h / 6.5h on the paper's hardware. NOTEARS cannot "
      "represent these sizes at all (dense e^S).\n");
  return 0;
}

}  // namespace
}  // namespace least::bench

int main() { return least::bench::Run(); }
