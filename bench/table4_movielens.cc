// Reproduces Table IV and Fig. 8 (paper Section VI-C): the explainable
// recommendation case study. Learns the item-to-item graph from synthetic
// MovieLens-style ratings with LEAST-SP, prints the top-10 positive edges
// with ground-truth remarks (the "same series / same genre" column of
// Table IV), extracts a Fig. 8-style neighborhood subgraph, and checks the
// paper's blockbuster/niche in/out-degree asymmetry observation.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/least_sparse.h"
#include "data/ratings_generator.h"
#include "graph/dag.h"
#include "util/table_printer.h"

namespace least::bench {
namespace {

std::string Remark(const RatingsInstance& inst, int from, int to) {
  const ItemInfo& a = inst.items[from];
  const ItemInfo& b = inst.items[to];
  if (a.series >= 0 && a.series == b.series) return "same series";
  if (a.genre == b.genre) return "same genre";
  return "-";
}

int Run() {
  const double scale = Scale(1.0);
  PrintBanner("Table IV + Fig. 8: explainable recommendation case study",
              scale);

  RatingsConfig cfg;
  cfg.num_items = static_cast<int>(120 * std::max(1.0, scale));
  cfg.num_users = static_cast<int>(6000 * std::max(1.0, scale));
  cfg.num_series = cfg.num_items / 5;
  cfg.seed = 5;
  RatingsInstance inst = MakeRatings(cfg);

  LearnOptions opt;
  opt.batch_size = 512;
  opt.lambda1 = 0.002;
  opt.learning_rate = 0.03;
  opt.filter_threshold = 0.02;
  opt.prune_threshold = 0.03;
  opt.tolerance = 1e-6;
  opt.max_outer_iterations = 20;
  opt.max_inner_iterations = 150;
  LeastSparseLearner learner(opt);
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < cfg.num_items; ++i) {
    for (int j = 0; j < cfg.num_items; ++j) {
      if (i != j) pairs.push_back({i, j});
    }
  }
  learner.set_candidate_edges(std::move(pairs));
  OwningCsrDataSource src(inst.ratings);
  SparseLearnResult r = learner.Fit(src);
  DenseMatrix learned = r.weights.ToDense();

  // ---- Table IV: top-10 positive learned edges. ----
  auto edges = EdgesFromDense(learned);
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return a.weight > b.weight;
            });
  TablePrinter table({"link from", "link to", "weight", "remark"});
  int same_series = 0;
  const int top = std::min<int>(10, static_cast<int>(edges.size()));
  for (int e = 0; e < top; ++e) {
    const std::string remark = Remark(inst, edges[e].from, edges[e].to);
    same_series += remark == "same series";
    table.AddRow({inst.items[edges[e].from].name,
                  inst.items[edges[e].to].name,
                  TablePrinter::Fmt(edges[e].weight, 3), remark});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("top-%d edges: %d same-series (paper Table IV: 5/10 same "
              "series, rest same period/director/genre)\n\n",
              top, same_series);

  // ---- Fig. 8: neighborhood subgraph around a well-connected item. ----
  AdjacencyList adj = AdjacencyFromDense(learned, 0.02);
  DegreeSummary deg = Degrees(adj);
  int hub = 0;
  for (int i = 1; i < cfg.num_items; ++i) {
    if (deg.in[i] + deg.out[i] > deg.in[hub] + deg.out[hub]) hub = i;
  }
  auto nodes = NeighborhoodNodes(adj, hub, 1);
  std::printf("Fig. 8 analog: radius-1 subgraph around \"%s\": %zu nodes\n",
              inst.items[hub].name.c_str(), nodes.size());
  for (int a : nodes) {
    for (int b : adj[a]) {
      if (std::find(nodes.begin(), nodes.end(), b) != nodes.end()) {
        std::printf("  %s -> %s (%.3f, %s)\n", inst.items[a].name.c_str(),
                    inst.items[b].name.c_str(), learned(a, b),
                    learned(a, b) > 0 ? "positive" : "negative");
      }
    }
  }

  // ---- Blockbuster / niche degree asymmetry. ----
  double blockbuster_in = 0, blockbuster_out = 0, niche_in = 0,
         niche_out = 0;
  int nb = 0, nn = 0;
  for (int i = 0; i < cfg.num_items; ++i) {
    if (inst.items[i].blockbuster) {
      blockbuster_in += deg.in[i];
      blockbuster_out += deg.out[i];
      ++nb;
    }
    if (inst.items[i].niche) {
      niche_in += deg.in[i];
      niche_out += deg.out[i];
      ++nn;
    }
  }
  if (nb > 0 && nn > 0) {
    std::printf(
        "\nDegree asymmetry (learned graph): blockbusters avg in=%.1f "
        "out=%.1f; niche avg in=%.1f out=%.1f\n",
        blockbuster_in / nb, blockbuster_out / nb, niche_in / nn,
        niche_out / nn);
    std::printf(
        "Paper reference: blockbusters (Star Wars V: 68 in, 0 out) attract "
        "links; niche titles (The New Land: 221 out, 0 in) emit them.\n");
  }
  return 0;
}

}  // namespace
}  // namespace least::bench

int main() { return least::bench::Run(); }
