// Reproduces Fig. 4, rows 1–2 (paper Section V-A): F1 score and structural
// Hamming distance of LEAST vs. NOTEARS on ER-2 / SF-4 graphs under
// Gaussian / Exponential / Gumbel noise, n = 10·d, with the paper's
// (ε, τ) grid-search protocol.
//
// Expected shape (paper): F1 > 0.8 almost everywhere, and the two
// algorithms within a few points of each other at every d.

#include <cstdio>

#include "bench_common.h"
#include "data/benchmark_data.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace least::bench {
namespace {

int Run() {
  const double scale = Scale(0.5);
  const int seeds = Seeds(1);
  std::vector<int> dims;
  for (int d : {10, 20, 50, 100}) {
    if (d <= 20 || scale * d >= 20) dims.push_back(d);
  }
  if (EnvFlag("LEAST_BENCH_FULL")) dims = {10, 20, 50, 100};
  PrintBanner("Fig. 4 rows 1-2: F1 and SHD, LEAST vs NOTEARS", scale);

  TablePrinter table({"graph", "noise", "d", "F1 LEAST", "F1 NOTEARS",
                      "SHD LEAST", "SHD NOTEARS", "(eps,tau) LEAST"});
  for (GraphType graph : {GraphType::kErdosRenyi, GraphType::kScaleFree}) {
    for (NoiseType noise :
         {NoiseType::kGaussian, NoiseType::kExponential, NoiseType::kGumbel}) {
      for (int d : dims) {
        RunningStats f1_least, f1_notears, shd_least, shd_notears;
        double eps = 0, tau = 0;
        for (int seed = 1; seed <= seeds; ++seed) {
          BenchmarkConfig cfg;
          cfg.graph_type = graph;
          cfg.noise_type = noise;
          cfg.d = d;
          cfg.seed = 100 * seed + d;
          BenchmarkInstance inst = MakeBenchmarkInstance(cfg);

          LearnOptions opt;
          opt.lambda1 = 0.1;
          opt.learning_rate = 0.02;
          opt.max_outer_iterations = 25;
          opt.max_inner_iterations = 300;
          opt.seed = seed;

          ProtocolResult l = RunPaperProtocol(inst.x, inst.w_true, "least", opt);
          ProtocolResult n =
              RunPaperProtocol(inst.x, inst.w_true, "notears", opt);
          f1_least.Add(l.metrics.f1);
          f1_notears.Add(n.metrics.f1);
          shd_least.Add(static_cast<double>(l.metrics.shd));
          shd_notears.Add(static_cast<double>(n.metrics.shd));
          eps = l.best_epsilon;
          tau = l.best_tau;
        }
        char grid[48];
        std::snprintf(grid, sizeof(grid), "(%.0e, %.1f)", eps, tau);
        table.AddRow({std::string(GraphTypeName(graph)) + "-" +
                          (graph == GraphType::kErdosRenyi ? "2" : "4"),
                      NoiseTypeName(noise), std::to_string(d),
                      TablePrinter::Fmt(f1_least.mean(), 3),
                      TablePrinter::Fmt(f1_notears.mean(), 3),
                      TablePrinter::Fmt(shd_least.mean(), 1),
                      TablePrinter::Fmt(shd_notears.mean(), 1), grid});
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper reference: F1 >= 0.8 in almost all cases, LEAST within noise "
      "of NOTEARS; SHD comparable.\n");
  return 0;
}

}  // namespace
}  // namespace least::bench

int main() { return least::bench::Run(); }
