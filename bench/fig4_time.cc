// Reproduces Fig. 4, row 4 (paper Section V-A): end-to-end wall time of
// LEAST vs. NOTEARS at ε = 1e-4, n = 10·d.
//
// Expected shape (paper): LEAST 5–15x faster, the gap widening with d
// (near-O(d) constraint vs O(d³)). Absolute numbers differ from the
// paper's 96-core testbed; the ratio is what must reproduce.

#include <cstdio>

#include "bench_common.h"
#include "data/benchmark_data.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace least::bench {
namespace {

double TimeOneRun(const DenseMatrix& x, const std::string& algo) {
  LearnOptions opt;
  opt.lambda1 = 0.1;
  opt.learning_rate = 0.03;
  opt.max_outer_iterations = 15;
  opt.max_inner_iterations = 150;
  opt.filter_threshold = 0.0;
  opt.tolerance = 1e-4;
  if (algo == "least") {
    opt.track_exact_h = true;  // the paper's shared termination rule
    opt.terminate_on_h = true;
    return FitLeastDense(x, opt).seconds;
  }
  return FitNotears(x, opt).seconds;
}

int Run() {
  const double scale = Scale(0.4);
  std::vector<int> dims = {50, 100};        // d = 200 adds ~5 CPU-minutes
  if (scale >= 0.8) dims = {50, 100, 200};
  if (scale >= 1.0) dims = {100, 200, 500};
  PrintBanner("Fig. 4 row 4: execution time, LEAST vs NOTEARS (eps = 1e-4)",
              scale);

  TablePrinter table({"graph", "noise", "d", "LEAST (s)", "NOTEARS (s)",
                      "speedup"});
  // The paper shows all six graph/noise panels; the timing shape is
  // noise-independent, so default runs cover one noise per graph family
  // and the full sweep is enabled at scale >= 1.
  std::vector<NoiseType> noises = {NoiseType::kGaussian};
  if (scale >= 1.0) {
    noises = {NoiseType::kGaussian, NoiseType::kExponential,
              NoiseType::kGumbel};
  }
  for (GraphType graph : {GraphType::kErdosRenyi, GraphType::kScaleFree}) {
    for (NoiseType noise : noises) {
      for (int d : dims) {
        BenchmarkConfig cfg;
        cfg.graph_type = graph;
        cfg.noise_type = noise;
        cfg.d = d;
        cfg.seed = 7 + d;
        BenchmarkInstance inst = MakeBenchmarkInstance(cfg);
        const double t_least = TimeOneRun(inst.x, "least");
        const double t_notears = TimeOneRun(inst.x, "notears");
        table.AddRow({std::string(GraphTypeName(graph)) + "-" +
                          (graph == GraphType::kErdosRenyi ? "2" : "4"),
                      NoiseTypeName(noise), std::to_string(d),
                      TablePrinter::Fmt(t_least, 2),
                      TablePrinter::Fmt(t_notears, 2),
                      TablePrinter::Fmt(t_notears / std::max(t_least, 1e-9), 1) +
                          "x"});
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper reference: speedups of 5-15x, growing with d (10x at d=100, "
      "14.7x at d=500).\n");
  return 0;
}

}  // namespace
}  // namespace least::bench

int main() { return least::bench::Run(); }
