// Reproduces Fig. 4, row 3 (paper Section V-A): the Pearson correlation
// between the LEAST spectral bound δ̄(W) and the NOTEARS constraint h(W)
// recorded along the optimization trajectory.
//
// Expected shape (paper): correlation > 0.8 in all configurations and
// > 0.9 in most — the bound is a valid stand-in for h.

#include <cstdio>

#include "bench_common.h"
#include "data/benchmark_data.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace least::bench {
namespace {

int Run() {
  const double scale = Scale(0.5);
  const int seeds = Seeds(1);
  std::vector<int> dims = {10, 20, 50};
  if (scale >= 1.0) dims.push_back(100);
  PrintBanner("Fig. 4 row 3: Pearson correlation of spectral bound vs h(W)",
              scale);

  TablePrinter table(
      {"graph", "noise", "d", "corr(bound, h)", "trace points"});
  for (GraphType graph : {GraphType::kErdosRenyi, GraphType::kScaleFree}) {
    for (NoiseType noise :
         {NoiseType::kGaussian, NoiseType::kExponential, NoiseType::kGumbel}) {
      for (int d : dims) {
        RunningStats corr_stats;
        long long points = 0;
        for (int seed = 1; seed <= seeds; ++seed) {
          BenchmarkConfig cfg;
          cfg.graph_type = graph;
          cfg.noise_type = noise;
          cfg.d = d;
          cfg.seed = 13 * seed + d;
          BenchmarkInstance inst = MakeBenchmarkInstance(cfg);

          LearnOptions opt;
          opt.lambda1 = 0.1;
          opt.learning_rate = 0.03;
          opt.max_outer_iterations = 25;
          opt.max_inner_iterations = 200;
          opt.filter_threshold = 0.0;
          opt.track_exact_h = true;
          opt.terminate_on_h = true;
          opt.tolerance = 1e-4;
          opt.seed = seed;
          LearnResult r = FitLeastDense(inst.x, opt);

          std::vector<double> bounds, hs;
          for (const TracePoint& tp : r.trace) {
            if (tp.h_value >= 0.0) {
              bounds.push_back(tp.constraint_value);
              hs.push_back(tp.h_value);
            }
          }
          if (bounds.size() >= 3) {
            corr_stats.Add(PearsonCorrelation(bounds, hs));
            points += static_cast<long long>(bounds.size());
          }
        }
        table.AddRow({std::string(GraphTypeName(graph)) + "-" +
                          (graph == GraphType::kErdosRenyi ? "2" : "4"),
                      NoiseTypeName(noise), std::to_string(d),
                      TablePrinter::Fmt(corr_stats.mean(), 3),
                      TablePrinter::Fmt(points)});
      }
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper reference: correlation coefficients > 0.8 everywhere, > 0.9 in "
      "most cases.\n");
  return 0;
}

}  // namespace
}  // namespace least::bench

int main() { return least::bench::Run(); }
