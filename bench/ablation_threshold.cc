// Ablation (DESIGN.md §6): the optimization-time filter θ (paper Fig. 3
// INNER line 9) and the sparse initial density ζ. θ is what removes
// cycle-inducing parasite entries for good (Section IV: "removing these
// elements makes W remain sparse throughout the optimization"); ζ decides
// how much of the support the sparse learner can ever recover.

#include <cstdio>

#include "bench_common.h"
#include "core/least.h"
#include "core/least_sparse.h"
#include "data/benchmark_data.h"
#include "metrics/structure_metrics.h"
#include "util/table_printer.h"

namespace least::bench {
namespace {

int Run() {
  const double scale = Scale(1.0);
  PrintBanner("Ablation: filter threshold theta and init density zeta",
              scale);

  // ---- θ on the dense learner. ----
  BenchmarkConfig cfg;
  cfg.d = static_cast<int>(30 * std::max(1.0, scale));
  cfg.seed = 19;
  BenchmarkInstance inst = MakeBenchmarkInstance(cfg);

  TablePrinter theta_table(
      {"theta", "F1", "SHD", "converged", "final bound", "outer"});
  for (double theta : {0.0, 0.005, 0.02, 0.05, 0.1, 0.2}) {
    LearnOptions opt;
    opt.lambda1 = 0.1;
    opt.learning_rate = 0.03;
    opt.filter_threshold = theta;
    opt.tolerance = 1e-6;
    opt.max_outer_iterations = 25;
    opt.max_inner_iterations = 150;
    LearnResult r = FitLeastDense(inst.x, opt);
    StructureMetrics m = EvaluateStructure(inst.w_true, r.weights);
    theta_table.AddRow({TablePrinter::Fmt(theta, 3),
                        TablePrinter::Fmt(m.f1, 3), TablePrinter::Fmt(m.shd),
                        r.status.ok() ? "yes" : "no",
                        TablePrinter::Fmt(r.constraint_value, 8),
                        TablePrinter::Fmt(
                            static_cast<long long>(r.outer_iterations))});
  }
  std::printf("%s\n", theta_table.ToString().c_str());
  std::printf(
      "Shape: theta = 0 leaves the bound stuck at the optimizer's step-size "
      "floor (tight tolerances unreachable); moderate theta collapses it to "
      "exactly 0; huge theta begins to cut true edges.\n\n");

  // ---- ζ on the sparse learner (fraction of support recoverable). ----
  const int d = static_cast<int>(150 * std::max(1.0, scale));
  BenchmarkConfig sparse_cfg;
  sparse_cfg.d = d;
  sparse_cfg.n = 5 * d;
  sparse_cfg.seed = 23;
  BenchmarkInstance sparse_inst = MakeBenchmarkInstance(sparse_cfg);

  TablePrinter zeta_table({"zeta", "pattern nnz", "true edges in pattern",
                           "TPR", "FDR", "converged"});
  const long long true_edges = sparse_inst.w_true.CountNonZeros();
  for (double zeta : {0.005, 0.02, 0.08, 0.3}) {
    LearnOptions opt;
    opt.lambda1 = 0.05;
    opt.learning_rate = 0.03;
    opt.filter_threshold = 0.05;
    opt.init_density = zeta;
    opt.batch_size = 256;
    opt.tolerance = 1e-8;
    opt.max_outer_iterations = 20;
    opt.max_inner_iterations = 150;
    opt.seed = 31;
    LeastSparseLearner learner(opt);
    OwningDenseDataSource src(sparse_inst.x);

    // Count how many true edges the random ζ pattern could even contain:
    // rerun the same pattern construction statistically via the learner's
    // result trace (first trace point's nnz is the initial pattern size).
    SparseLearnResult r = learner.Fit(src);
    StructureMetrics m =
        EvaluateStructure(sparse_inst.w_true, r.weights.ToDense());
    const long long pattern0 =
        r.trace.empty() ? 0 : static_cast<long long>(r.trace.front().nnz);
    // Expected true edges covered by a ζ-density random pattern.
    const long long expected_hits =
        static_cast<long long>(zeta * static_cast<double>(true_edges));
    zeta_table.AddRow({TablePrinter::Fmt(zeta, 3),
                       TablePrinter::Fmt(pattern0),
                       TablePrinter::Fmt(expected_hits) + " (expected)",
                       TablePrinter::Fmt(m.tpr, 3),
                       TablePrinter::Fmt(m.fdr, 3),
                       r.status.ok() ? "yes" : "no"});
  }
  std::printf("%s\n", zeta_table.ToString().c_str());
  std::printf(
      "Shape: recovery is capped by the share of true edges that land in "
      "the zeta-random pattern (TPR ~ zeta at small zeta) — the paper's "
      "zeta = 1e-4 presumes d ~ 10^5 where zeta d^2 is still millions of "
      "candidate entries.\n");
  return 0;
}

}  // namespace
}  // namespace least::bench

int main() { return least::bench::Run(); }
