/// \file kernel_micro.cc
/// \brief Kernel-layer microbenchmarks: gemm throughput, expm latency, and
/// learner step time.
///
/// Quantifies the kernel performance layer against its baselines:
///   - gemm: the cache-blocked, B-packing `MatmulInto` vs. the textbook ikj
///     `MatmulReferenceInto` (the "naive" column — the pre-layer kernel),
///     in GFLOP/s at d ∈ {50, 100, 300, 500}.
///   - expm: per-call latency with a reused `Workspace` (the learner hot
///     path) vs. call-local scratch (the pre-layer allocation pattern).
///   - learner step: milliseconds per inner optimization step for the dense
///     LEAST learner (spectral bound) and the NOTEARS baseline (expm).
///
/// A machine-readable snapshot lands in `BENCH_kernels.json` (both columns,
/// so the ≥2x single-thread gemm acceptance bar at d = 300 is recorded).
///
///   LEAST_BENCH_SCALE=<double>   shrinks the size grid (smoke: 0.2)
///   LEAST_BENCH_FULL=1           shorthand for scale = 1

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "constraint/expm_trace.h"
#include "constraint/spectral_bound.h"
#include "core/continuous_learner.h"
#include "linalg/expm.h"
#include "linalg/workspace.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace {

using namespace least;

// Best-of-N timing: repeats `fn` until `min_seconds` of total work (at least
// `min_reps` reps) and returns the fastest single rep in seconds.
template <typename Fn>
double TimeBest(Fn&& fn, double min_seconds = 0.2, int min_reps = 3) {
  double best = 1e300;
  double total = 0.0;
  int reps = 0;
  while (total < min_seconds || reps < min_reps) {
    Stopwatch watch;
    fn();
    const double t = watch.Seconds();
    best = std::min(best, t);
    total += t;
    ++reps;
    if (reps > 10000) break;
  }
  return best;
}

struct GemmRow {
  int d;
  double naive_gflops;
  double blocked_gflops;
};

struct ExpmRow {
  int d;
  double alloc_ms;
  double workspace_ms;
};

struct StepRow {
  int d;
  double least_ms;
  double notears_ms;
};

double LearnerStepMs(const DenseMatrix& x, bool notears, int steps) {
  LearnOptions opt;
  opt.max_outer_iterations = 1;
  opt.max_inner_iterations = steps;
  opt.inner_rtol = 0.0;  // never stop early: time exactly `steps` steps
  opt.inner_check_every = steps + 1;
  opt.batch_size = 0;  // full-batch Gram path
  opt.track_exact_h = false;
  opt.init_density = 0.1;
  std::unique_ptr<AcyclicityConstraint> c;
  if (notears) {
    c = std::make_unique<ExpmTraceConstraint>();
  } else {
    c = std::make_unique<SpectralBoundConstraint>();
  }
  ContinuousLearner learner(std::move(c), opt);
  Stopwatch watch;
  LearnResult result = learner.Fit(x);
  const double seconds = watch.Seconds();
  return 1000.0 * seconds /
         static_cast<double>(std::max<long long>(1, result.inner_iterations));
}

}  // namespace

int main() {
  const double scale = bench::Scale(1.0);
  bench::PrintBanner("kernel_micro: gemm / expm / learner step", scale);

  std::vector<int> dims;
  for (int d : {50, 100, 300, 500}) {
    const int scaled = std::max(8, static_cast<int>(d * scale));
    if (dims.empty() || dims.back() != scaled) dims.push_back(scaled);
  }

  Rng rng(20210414);

  // ---- gemm: naive vs blocked, single thread (no executor installed). ----
  std::vector<GemmRow> gemm_rows;
  for (int d : dims) {
    DenseMatrix a = DenseMatrix::RandomUniform(d, d, -1.0, 1.0, rng);
    DenseMatrix b = DenseMatrix::RandomUniform(d, d, -1.0, 1.0, rng);
    DenseMatrix out(d, d);
    const double flops = 2.0 * d * double(d) * d;
    const double t_naive = TimeBest([&] { MatmulReferenceInto(a, b, &out); });
    const double t_blocked = TimeBest([&] { MatmulInto(a, b, &out); });
    gemm_rows.push_back({d, flops / t_naive / 1e9, flops / t_blocked / 1e9});
  }

  TablePrinter gemm_table(
      {"d", "naive GFLOP/s", "blocked GFLOP/s", "speedup"});
  for (const GemmRow& r : gemm_rows) {
    gemm_table.AddRow({TablePrinter::Fmt(static_cast<long long>(r.d)),
                       TablePrinter::Fmt(r.naive_gflops, 2),
                       TablePrinter::Fmt(r.blocked_gflops, 2),
                       TablePrinter::Fmt(r.blocked_gflops / r.naive_gflops,
                                         2)});
  }
  std::printf("%s\n", gemm_table.ToString().c_str());

  // ---- expm: call-local scratch vs reused workspace. ----
  std::vector<ExpmRow> expm_rows;
  for (int d : dims) {
    // Norm ~1.5: exercises the Padé-13 scaling-and-squaring path the
    // optimizer sees on warm W (constraint h is evaluated on S = W ∘ W).
    DenseMatrix s = DenseMatrix::RandomUniform(d, d, 0.0, 3.0 / d, rng);
    DenseMatrix e;
    Workspace ws;
    const double t_alloc =
        TimeBest([&] { ExpmInto(s, &e, nullptr); }, 0.2, 2);
    const double t_ws = TimeBest([&] { ExpmInto(s, &e, &ws); }, 0.2, 2);
    expm_rows.push_back({d, 1000.0 * t_alloc, 1000.0 * t_ws});
  }

  TablePrinter expm_table({"d", "alloc ms", "workspace ms"});
  for (const ExpmRow& r : expm_rows) {
    expm_table.AddRow({TablePrinter::Fmt(static_cast<long long>(r.d)),
                       TablePrinter::Fmt(r.alloc_ms, 3),
                       TablePrinter::Fmt(r.workspace_ms, 3)});
  }
  std::printf("%s\n", expm_table.ToString().c_str());

  // ---- learner step time. ----
  std::vector<StepRow> step_rows;
  for (int d : dims) {
    const int n = 2 * d;
    DenseMatrix x = DenseMatrix::RandomUniform(n, d, -1.0, 1.0, rng);
    const int steps = std::max(3, 3000 / d);
    const double least_ms = LearnerStepMs(x, /*notears=*/false, steps);
    const int notears_steps = std::max(2, 600 / d);
    const double notears_ms = LearnerStepMs(x, /*notears=*/true,
                                            notears_steps);
    step_rows.push_back({d, least_ms, notears_ms});
  }

  TablePrinter step_table({"d", "least step ms", "notears step ms"});
  for (const StepRow& r : step_rows) {
    step_table.AddRow({TablePrinter::Fmt(static_cast<long long>(r.d)),
                       TablePrinter::Fmt(r.least_ms, 3),
                       TablePrinter::Fmt(r.notears_ms, 3)});
  }
  std::printf("%s\n", step_table.ToString().c_str());

  // ---- Machine-readable snapshot. ----
  std::FILE* json = std::fopen("BENCH_kernels.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"scale\": %.3f,\n  \"gemm\": [\n", scale);
    for (size_t i = 0; i < gemm_rows.size(); ++i) {
      const GemmRow& r = gemm_rows[i];
      std::fprintf(json,
                   "    {\"d\": %d, \"naive_gflops\": %.3f, "
                   "\"blocked_gflops\": %.3f, \"speedup\": %.2f}%s\n",
                   r.d, r.naive_gflops, r.blocked_gflops,
                   r.blocked_gflops / r.naive_gflops,
                   i + 1 < gemm_rows.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"expm\": [\n");
    for (size_t i = 0; i < expm_rows.size(); ++i) {
      const ExpmRow& r = expm_rows[i];
      std::fprintf(json,
                   "    {\"d\": %d, \"alloc_ms\": %.3f, "
                   "\"workspace_ms\": %.3f}%s\n",
                   r.d, r.alloc_ms, r.workspace_ms,
                   i + 1 < expm_rows.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"learner_step\": [\n");
    for (size_t i = 0; i < step_rows.size(); ++i) {
      const StepRow& r = step_rows[i];
      std::fprintf(json,
                   "    {\"d\": %d, \"least_dense_ms\": %.3f, "
                   "\"notears_ms\": %.3f}%s\n",
                   r.d, r.least_ms, r.notears_ms,
                   i + 1 < step_rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("snapshot written to BENCH_kernels.json\n");
  }
  return 0;
}
