// Ablation (DESIGN.md §6): the bound hyper-parameters k (tightening
// iterations) and α (row/column balancing). The paper fixes k = 5 and
// α = 0.9 with a one-line justification; this harness quantifies
//   (a) bound tightness vs. the true spectral radius across (k, α),
//   (b) evaluation cost vs. k,
//   (c) end-to-end recovery F1 when LEAST runs with each (k, α).

#include <cstdio>

#include "bench_common.h"
#include "constraint/spectral_bound.h"
#include "data/benchmark_data.h"
#include "linalg/power_iteration.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace least::bench {
namespace {

// Mid-optimization-like matrix: sparse DAG + weak back edges.
DenseMatrix RealisticW(int d, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix w(d, d);
  for (int i = 0; i < d; ++i) {
    for (int j = i + 1; j < d; ++j) {
      if (rng.Bernoulli(2.5 / d)) w(i, j) = rng.Uniform(0.5, 1.5);
    }
  }
  for (int t = 0; t < d / 10; ++t) {
    const int i = rng.UniformInt(d);
    const int j = rng.UniformInt(d);
    if (i > j) w(i, j) = rng.Uniform(0.01, 0.2);
  }
  // A genuine 3-cycle so the true spectral radius is positive.
  w(0, 1) = 0.8;
  w(1, 2) = 0.8;
  w(2, 0) = 0.8;
  return w;
}

int Run() {
  const double scale = Scale(1.0);
  PrintBanner("Ablation: bound iterations k and balancing factor alpha",
              scale);

  // ---- (a)+(b) tightness and cost. ----
  const int d = static_cast<int>(200 * std::max(1.0, scale));
  DenseMatrix w = RealisticW(d, 7);
  const double radius = SpectralRadius(w.HadamardSquare());
  std::printf("matrix: d=%d, nnz=%lld, true spectral radius of S = %.4g\n\n",
              d, w.CountNonZeros(), radius);

  TablePrinter tight({"k", "alpha", "bound", "bound/radius", "eval (ms)"});
  DenseMatrix grad(d, d);
  for (int k : {0, 1, 2, 3, 5, 8, 12}) {
    for (double alpha : {0.1, 0.5, 0.9}) {
      SpectralBoundConstraint c({.k = k, .alpha = alpha});
      Stopwatch watch;
      double bound = 0.0;
      const int reps = 5;
      for (int rep = 0; rep < reps; ++rep) bound = c.Evaluate(w, &grad);
      char bound_str[32], ratio_str[32];
      std::snprintf(bound_str, sizeof(bound_str), "%.3e", bound);
      std::snprintf(ratio_str, sizeof(ratio_str), "%.2e",
                    radius > 0 ? bound / radius : 0.0);
      tight.AddRow({std::to_string(k), TablePrinter::Fmt(alpha, 1),
                    bound_str, ratio_str,
                    TablePrinter::Fmt(watch.Millis() / reps, 2)});
    }
  }
  std::printf("%s\n", tight.ToString().c_str());

  // ---- (c) end-to-end recovery. ----
  TablePrinter end2end({"k", "alpha", "F1", "SHD", "time (s)"});
  BenchmarkConfig cfg;
  cfg.d = static_cast<int>(30 * std::max(1.0, scale));
  cfg.seed = 11;
  BenchmarkInstance inst = MakeBenchmarkInstance(cfg);
  for (int k : {1, 3, 5, 8}) {
    for (double alpha : {0.5, 0.9}) {
      LearnOptions opt;
      opt.k = k;
      opt.alpha = alpha;
      opt.lambda1 = 0.1;
      opt.learning_rate = 0.03;
      opt.max_outer_iterations = 20;
      opt.max_inner_iterations = 150;
      ProtocolResult p = RunPaperProtocol(inst.x, inst.w_true, "least", opt);
      end2end.AddRow({std::to_string(k), TablePrinter::Fmt(alpha, 1),
                      TablePrinter::Fmt(p.metrics.f1, 3),
                      TablePrinter::Fmt(p.metrics.shd),
                      TablePrinter::Fmt(p.seconds, 2)});
    }
  }
  std::printf("%s\n", end2end.ToString().c_str());
  std::printf(
      "Paper reference: k ~ 5 suffices; alpha = 0.9 (their default). Note "
      "the literal recursion *loosens* with small alpha / large k on dense "
      "matrices (bound explodes, recovery collapses) — the k = 5, alpha = "
      "0.9 operating point the paper picks is the stable corner.\n");
  return 0;
}

}  // namespace
}  // namespace least::bench

int main() { return least::bench::Run(); }
