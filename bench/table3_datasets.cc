// Reproduces Table III (paper Section V-B): properties of the large-scale
// real-world datasets. The proprietary/raw datasets are replaced by
// generated stand-ins (DESIGN.md §4); this harness materializes each at
// the active scale and prints its actual properties next to the paper's
// full-size numbers, verifying the generators hit the intended shapes.

#include <cstdio>

#include "bench_common.h"
#include "data/ratings_generator.h"
#include "data/streaming_lsem.h"
#include "graph/graph_generator.h"
#include "util/table_printer.h"

namespace least::bench {
namespace {

int Run() {
  const double scale = Scale(0.05);
  PrintBanner("Table III: properties of large-scale datasets (stand-ins)",
              scale);

  TablePrinter table({"dataset", "nodes (paper)", "nodes (built)",
                      "samples (paper)", "samples (built)", "storage"});

  {
    // Movielens stand-in: actual sparse ratings matrix.
    RatingsConfig cfg;
    cfg.num_items = std::max(200, static_cast<int>(27278 * scale));
    cfg.num_users = std::max(2000, static_cast<int>(138493 * scale));
    cfg.num_series = cfg.num_items / 6;
    cfg.rate_probability = std::min(0.3, 40.0 / cfg.num_items);
    cfg.seed = 3;
    RatingsInstance inst = MakeRatings(cfg);
    table.AddRow({"Movielens", "27,278", std::to_string(cfg.num_items),
                  "138,493", std::to_string(cfg.num_users),
                  "CSR ratings, nnz=" + std::to_string(inst.ratings.nnz())});
  }
  {
    Rng rng(5);
    const int d = std::max(500, static_cast<int>(91850 * scale));
    const int n = std::max(20000, static_cast<int>(1000000 * scale));
    CsrMatrix w = SparseRandomDagWeights(GraphType::kScaleFree, d, 4.0, rng);
    StreamingLsemSource src(w, n, {}, 7);
    table.AddRow({"App-Security", "91,850", std::to_string(src.num_cols()),
                  "1,000,000", std::to_string(src.num_rows()),
                  "streaming LSEM, true nnz=" + std::to_string(w.nnz())});
  }
  {
    Rng rng(7);
    const int d = std::max(500, static_cast<int>(159008 * scale));
    const int n = std::max(20000, static_cast<int>(584871 * scale));
    CsrMatrix w = SparseRandomDagWeights(GraphType::kErdosRenyi, d, 3.0, rng);
    StreamingLsemSource src(w, n, {}, 9);
    table.AddRow({"App-Recom", "159,008", std::to_string(src.num_cols()),
                  "584,871", std::to_string(src.num_rows()),
                  "streaming LSEM, true nnz=" + std::to_string(w.nnz())});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Run with LEAST_BENCH_FULL=1 to materialize the paper's full sizes "
      "(memory stays O(nnz) thanks to CSR + streaming sources).\n");
  return 0;
}

}  // namespace
}  // namespace least::bench

int main() { return least::bench::Run(); }
