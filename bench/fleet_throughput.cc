/// \file fleet_throughput.cc
/// \brief Fleet-runtime throughput: jobs/second vs. thread-pool size.
///
/// The paper's production claim is fleet scale ("tens of thousands of BN
/// instances daily"); this harness measures the runtime half of that claim.
/// The same queue of small gene-network learning jobs is replayed through
/// `FleetScheduler` on pools of 1, 2, 4, ... threads, and the table reports
/// wall time, throughput, speedup vs. 1 thread, and latency percentiles.
/// Job results are verified bitwise-identical across pool sizes (the fleet
/// determinism contract), so the speedup column measures pure scheduling
/// gain, not numerical drift.
///
/// Sizes follow the standard harness envs:
///   LEAST_BENCH_SCALE=<double>  fraction of the default 400-job queue
///   LEAST_FLEET_MAX_THREADS     cap on the largest pool (default: hardware)

#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "data/gene_network.h"
#include "runtime/fleet_scheduler.h"
#include "util/table_printer.h"

namespace {

struct RunResult {
  least::FleetReport report;
  least::DenseMatrix probe_weights;  ///< job 0's model, for determinism check
};

RunResult RunFleet(const std::vector<least::LearnJob>& jobs, int threads) {
  least::ThreadPool pool(threads);
  least::FleetScheduler scheduler(&pool, {.seed = 7});
  for (const least::LearnJob& job : jobs) {
    scheduler.Enqueue(job);  // copies: each run replays the identical queue
  }
  RunResult result;
  result.report = scheduler.Wait();
  result.probe_weights = scheduler.record(0).outcome.weights;
  return result;
}

}  // namespace

int main() {
  const double scale = least::bench::Scale(0.25);
  least::bench::PrintBanner("fleet throughput vs. thread-pool size", scale);

  const int num_jobs = std::max(20, static_cast<int>(400 * scale));
  const int hardware =
      std::max(1u, std::thread::hardware_concurrency());
  const int max_threads =
      std::max(1, least::EnvInt("LEAST_FLEET_MAX_THREADS", hardware));

  // One queue of small hub-topology gene networks (Sachs-like scale), the
  // fleet workload of paper Section VI-B.
  std::vector<least::LearnJob> jobs;
  jobs.reserve(num_jobs);
  for (int j = 0; j < num_jobs; ++j) {
    least::GeneNetworkConfig config;
    config.num_genes = 12;
    config.num_edges = 20;
    config.num_samples = 120;
    config.seed = 1000 + static_cast<uint64_t>(j);
    least::GeneNetworkInstance instance = least::MakeGeneNetwork(config);
    least::LearnJob job;
    job.name = "gene-" + std::to_string(j);
    job.algorithm = least::Algorithm::kLeastDense;
    job.data =
        std::make_shared<const least::DenseMatrix>(std::move(instance.x));
    job.options.max_outer_iterations = 12;
    job.options.max_inner_iterations = 80;
    job.options.tolerance = 1e-6;
    jobs.push_back(std::move(job));
  }
  std::printf("queue: %d jobs (12-gene networks, 120 samples each)\n\n",
              num_jobs);

  least::TablePrinter table({"threads", "wall s", "jobs/s", "speedup",
                             "p50 ms", "p99 ms", "ok", "deterministic"});
  double baseline_throughput = 0.0;
  RunResult baseline;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    RunResult run = RunFleet(jobs, threads);
    const least::FleetReport& r = run.report;
    bool deterministic = true;
    if (threads == 1) {
      baseline = run;
      baseline_throughput = r.throughput_jobs_per_sec;
    } else {
      deterministic =
          run.probe_weights.SameShape(baseline.probe_weights) &&
          least::MaxAbsDiff(run.probe_weights, baseline.probe_weights) == 0.0;
    }
    table.AddRow({std::to_string(threads),
                  least::TablePrinter::Fmt(r.wall_seconds, 2),
                  least::TablePrinter::Fmt(r.throughput_jobs_per_sec, 1),
                  least::TablePrinter::Fmt(
                      baseline_throughput > 0
                          ? r.throughput_jobs_per_sec / baseline_throughput
                          : 1.0,
                      2),
                  least::TablePrinter::Fmt(r.p50_latency_ms, 1),
                  least::TablePrinter::Fmt(r.p99_latency_ms, 1),
                  least::TablePrinter::Fmt(
                      static_cast<long long>(r.succeeded)),
                  deterministic ? "yes" : "NO"});
  }
  std::printf("%s\n", table.ToString().c_str());
  if (max_threads == 1) {
    std::printf("note: only 1 hardware thread available; rerun on a "
                "multi-core host (or set LEAST_FLEET_MAX_THREADS) to see "
                "scheduling speedup.\n");
  }
  return 0;
}
