/// \file fleet_throughput.cc
/// \brief Fleet-runtime throughput: jobs/second vs. thread-pool size.
///
/// The paper's production claim is fleet scale ("tens of thousands of BN
/// instances daily"); this harness measures the runtime half of that claim.
/// The same queue of small gene-network learning jobs is replayed through
/// `FleetScheduler` on pools of 1, 2, 4, ... threads, and the table reports
/// wall time, throughput, speedup vs. 1 thread, and latency percentiles.
/// Job results are verified bitwise-identical across pool sizes (the fleet
/// determinism contract), so the speedup column measures pure scheduling
/// gain, not numerical drift.
///
/// A second section measures the disk-backed data plane: the same queue as
/// CSV jobs loaded lazily through a `DatasetCache` at several byte budgets,
/// against the all-in-RAM baseline — throughput cost of cache churn, hit
/// rates, evictions, and the bit-identical-results guarantee.
///
/// A third section measures the sharded data plane on a single dataset 4x
/// larger than its cache budget: `least-sparse` streams it in row-range
/// shards (peak resident <= budget) and must land bitwise on the all-in-RAM
/// model — first from local disk, then over loopback HTTP `Range:` requests
/// from a live origin (`HttpDataSource`), reporting the wire's cost next to
/// the disk's.
///
/// A fourth section (`mixed_workload`) measures the scheduling policy
/// itself: latency-sensitive small jobs stuck behind batch-sized large jobs
/// on a saturated 2-thread pool, FIFO vs. the priority and cache-affinity
/// claim orders. The policy must cut the small-job p99 at equal throughput
/// (same total work, same pool) while every policy learns bit-identical
/// models. A machine-readable snapshot of all sections lands in
/// `BENCH_fleet.json`.
///
/// Sizes follow the standard harness envs:
///   LEAST_BENCH_SCALE=<double>  fraction of the default 400-job queue
///   LEAST_FLEET_MAX_THREADS     cap on the largest pool (default: hardware)

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/least_sparse.h"
#include "data/benchmark_data.h"
#include "data/gene_network.h"
#include "net/fleet_service.h"
#include "net/http_data_source.h"
#include "net/http_server.h"
#include "obs/trace_log.h"
#include "runtime/fleet_scheduler.h"
#include "runtime/job_journal.h"
#include "util/csv.h"
#include "util/failpoint.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace {

struct RunResult {
  least::FleetReport report;
  least::DenseMatrix probe_weights;  ///< job 0's model, for determinism check
};

RunResult RunFleet(const std::vector<least::LearnJob>& jobs, int threads) {
  least::ThreadPool pool(threads);
  least::FleetScheduler scheduler(&pool, {.seed = 7});
  for (const least::LearnJob& job : jobs) {
    scheduler.Enqueue(job);  // copies: each run replays the identical queue
  }
  RunResult result;
  result.report = scheduler.Wait();
  result.probe_weights = scheduler.record(0).outcome.weights;
  return result;
}

}  // namespace

int main() {
  const double scale = least::bench::Scale(0.25);
  least::bench::PrintBanner("fleet throughput vs. thread-pool size", scale);

  const int num_jobs = std::max(20, static_cast<int>(400 * scale));
  const int hardware =
      std::max(1u, std::thread::hardware_concurrency());
  const int max_threads =
      std::max(1, least::EnvInt("LEAST_FLEET_MAX_THREADS", hardware));

  // One queue of small hub-topology gene networks (Sachs-like scale), the
  // fleet workload of paper Section VI-B.
  std::vector<least::LearnJob> jobs;
  jobs.reserve(num_jobs);
  for (int j = 0; j < num_jobs; ++j) {
    least::GeneNetworkConfig config;
    config.num_genes = 12;
    config.num_edges = 20;
    config.num_samples = 120;
    config.seed = 1000 + static_cast<uint64_t>(j);
    least::GeneNetworkInstance instance = least::MakeGeneNetwork(config);
    least::LearnJob job;
    job.name = "gene-" + std::to_string(j);
    job.algorithm = least::Algorithm::kLeastDense;
    job.data = least::MakeDenseSource(std::move(instance.x), job.name);
    job.options.max_outer_iterations = 12;
    job.options.max_inner_iterations = 80;
    job.options.tolerance = 1e-6;
    jobs.push_back(std::move(job));
  }
  std::printf("queue: %d jobs (12-gene networks, 120 samples each)\n\n",
              num_jobs);

  least::TablePrinter table({"threads", "wall s", "jobs/s", "speedup",
                             "p50 ms", "p99 ms", "ok", "deterministic"});
  double baseline_throughput = 0.0;
  RunResult baseline;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    RunResult run = RunFleet(jobs, threads);
    const least::FleetReport& r = run.report;
    bool deterministic = true;
    if (threads == 1) {
      baseline = run;
      baseline_throughput = r.throughput_jobs_per_sec;
    } else {
      deterministic =
          run.probe_weights.SameShape(baseline.probe_weights) &&
          least::MaxAbsDiff(run.probe_weights, baseline.probe_weights) == 0.0;
    }
    table.AddRow({std::to_string(threads),
                  least::TablePrinter::Fmt(r.wall_seconds, 2),
                  least::TablePrinter::Fmt(r.throughput_jobs_per_sec, 1),
                  least::TablePrinter::Fmt(
                      baseline_throughput > 0
                          ? r.throughput_jobs_per_sec / baseline_throughput
                          : 1.0,
                      2),
                  least::TablePrinter::Fmt(r.p50_latency_ms, 1),
                  least::TablePrinter::Fmt(r.p99_latency_ms, 1),
                  least::TablePrinter::Fmt(
                      static_cast<long long>(r.succeeded)),
                  deterministic ? "yes" : "NO"});
  }
  std::printf("%s\n", table.ToString().c_str());
  if (max_threads == 1) {
    std::printf("note: only 1 hardware thread available; rerun on a "
                "multi-core host (or set LEAST_FLEET_MAX_THREADS) to see "
                "scheduling speedup.\n");
  }

  // ---- Disk-backed data plane: CSV jobs through the DatasetCache. ----
  const int disk_threads = std::min(max_threads, 2);
  namespace fs = std::filesystem;
  const std::string csv_dir =
      (fs::temp_directory_path() / "least_bench_fleet_csv").string();
  fs::remove_all(csv_dir);
  fs::create_directories(csv_dir);
  size_t dataset_bytes = 0;
  std::vector<std::string> csv_paths;
  for (int j = 0; j < num_jobs; ++j) {
    auto dense = jobs[j].data->Dense();
    const least::DenseMatrix& x = *dense.value();
    dataset_bytes = x.size() * sizeof(double);
    const std::string path = csv_dir + "/ds-" + std::to_string(j) + ".csv";
    (void)least::WriteMatrixCsv(path, x);
    csv_paths.push_back(path);
  }

  struct DiskRun {
    std::string label;
    size_t budget_datasets = 0;  // 0 = all in RAM
    least::FleetReport report;
    least::DatasetCache::Stats cache;
    bool deterministic = true;
  };
  std::vector<DiskRun> disk_runs;
  // One baseline run serves as both the in-RAM table row and the
  // determinism probe for every cache budget.
  const RunResult ram_run = RunFleet(jobs, disk_threads);
  const least::DenseMatrix& ram_probe = ram_run.probe_weights;
  for (const size_t budget_datasets : {size_t{0}, size_t{64}, size_t{16},
                                       size_t{4}}) {
    DiskRun run;
    run.budget_datasets = budget_datasets;
    if (budget_datasets == 0) {
      run.label = "in-RAM";
      run.report = ram_run.report;
      run.deterministic = true;
      disk_runs.push_back(run);
      continue;
    }
    run.label = std::to_string(budget_datasets) + "-dataset cache";
    least::DatasetCache cache(budget_datasets * dataset_bytes);
    least::ThreadPool pool(disk_threads);
    least::FleetScheduler scheduler(&pool, {.seed = 7});
    for (int j = 0; j < num_jobs; ++j) {
      least::LearnJob job;
      job.name = jobs[j].name;
      job.algorithm = jobs[j].algorithm;
      job.options = jobs[j].options;
      least::CsvSourceOptions opt;
      opt.has_header = false;
      opt.cache = &cache;
      job.data = least::MakeCsvSource(csv_paths[j], opt);
      scheduler.Enqueue(std::move(job));
    }
    run.report = scheduler.Wait();
    run.cache = cache.stats();
    const least::DenseMatrix& probe = scheduler.record(0).outcome.weights;
    run.deterministic = probe.SameShape(ram_probe) &&
                        least::MaxAbsDiff(probe, ram_probe) == 0.0;
    disk_runs.push_back(run);
  }

  // ---- Tracing overhead: the same CSV fleet with telemetry off/on. ----
  // The telemetry contract is that observing the fleet is nearly free:
  // `TraceEmit` is one relaxed load plus a branch when no log is installed,
  // and a per-thread buffered append when one is. Three modes isolate the
  // costs: off (the branch only), null-sink (emit + background drain, no
  // I/O), file-sink (the full .lbtrace write path).
  const size_t trace_budget = 16 * dataset_bytes;
  auto run_csv_fleet = [&](least::DatasetCache* cache) {
    least::ThreadPool pool(disk_threads);
    least::FleetScheduler scheduler(&pool, {.seed = 7});
    for (int j = 0; j < num_jobs; ++j) {
      least::LearnJob job;
      job.name = jobs[j].name;
      job.algorithm = jobs[j].algorithm;
      job.options = jobs[j].options;
      least::CsvSourceOptions opt;
      opt.has_header = false;
      opt.cache = cache;
      job.data = least::MakeCsvSource(csv_paths[j], opt);
      scheduler.Enqueue(std::move(job));
    }
    RunResult result;
    result.report = scheduler.Wait();
    result.probe_weights = scheduler.record(0).outcome.weights;
    return result;
  };

  struct TraceRun {
    std::string mode;
    least::FleetReport report;
    int64_t events = 0;
    uint64_t trace_bytes = 0;
    bool deterministic = true;
  };
  const std::string trace_path = csv_dir + "/bench.lbtrace";
  std::vector<TraceRun> trace_runs;
  for (const char* mode : {"off", "null-sink", "file-sink"}) {
    TraceRun best;
    best.mode = mode;
    // Best of 3 replays per mode: wall times of these small jobs are noisy
    // enough to swamp the few-percent overhead being measured.
    for (int rep = 0; rep < 3; ++rep) {
      std::unique_ptr<least::TraceLog> log;
      if (best.mode == "null-sink") {
        log = least::TraceLog::NullSink({.flush_period_ms = 2});
      } else if (best.mode == "file-sink") {
        auto opened =
            least::TraceLog::OpenFile(trace_path, {.flush_period_ms = 2});
        if (opened.ok()) log = std::move(opened).value();
      }
      RunResult run;
      {
        least::ScopedTraceLog scope(log.get());  // nullptr => tracing off
        least::DatasetCache cache(trace_budget);
        run = run_csv_fleet(&cache);
      }
      int64_t events = 0;
      uint64_t trace_bytes = 0;
      if (log != nullptr) {
        (void)log->Close();
        events = log->events_written();
        std::error_code ec;
        const auto size = fs::file_size(trace_path, ec);
        trace_bytes = ec ? 0 : static_cast<uint64_t>(size);
      }
      if (rep == 0 || run.report.wall_seconds < best.report.wall_seconds) {
        best.report = run.report;
        best.events = events;
        best.trace_bytes = trace_bytes;
      }
      best.deterministic =
          best.deterministic && run.probe_weights.SameShape(ram_probe) &&
          least::MaxAbsDiff(run.probe_weights, ram_probe) == 0.0;
    }
    trace_runs.push_back(std::move(best));
  }

  // ---- Failpoint overhead: the same CSV fleet with probes disarmed and
  // armed-but-inert. ----
  // The failpoint contract mirrors tracing's: a disarmed `LEAST_FAILPOINT`
  // probe is one relaxed atomic load plus a branch, so production pays
  // nothing for the fault-injection seams threaded through the cache,
  // checkpoint, sink, scheduler, and HTTP paths. "disarmed" is the
  // production default (configuration-identical to the tracing-off
  // baseline above); "armed-inert" arms a plan for a site no probe ever
  // reaches, forcing every probe through the slow-path registry lookup —
  // the worst case a chaos run imposes on un-probed code. The two modes
  // alternate rep by rep (best of 5 each) so slow machine-level drift
  // cancels out of the comparison.
  struct FailpointRun {
    std::string mode;
    least::FleetReport report;
    bool deterministic = true;
  };
  std::vector<FailpointRun> failpoint_runs(2);
  failpoint_runs[0].mode = "disarmed";
  failpoint_runs[1].mode = "armed-inert";
  for (int rep = 0; rep < 5; ++rep) {
    for (FailpointRun& best : failpoint_runs) {
      RunResult run;
      {
        std::unique_ptr<least::ScopedFailpoints> armed;
        if (best.mode == "armed-inert") {
          armed = std::make_unique<least::ScopedFailpoints>(
              "bench.unreachable=err:io@1000000");
        }
        least::DatasetCache cache(trace_budget);
        run = run_csv_fleet(&cache);
      }
      if (rep == 0 || run.report.wall_seconds < best.report.wall_seconds) {
        best.report = run.report;
      }
      best.deterministic =
          best.deterministic && run.probe_weights.SameShape(ram_probe) &&
          least::MaxAbsDiff(run.probe_weights, ram_probe) == 0.0;
    }
  }
  fs::remove_all(csv_dir);

  std::printf("disk-backed fleet (%d threads, %d CSV jobs of %zu bytes "
              "each):\n",
              disk_threads, num_jobs, dataset_bytes);
  least::TablePrinter disk_table({"data plane", "wall s", "jobs/s", "hits",
                                  "loads", "evicted", "peak KiB",
                                  "deterministic"});
  for (const DiskRun& run : disk_runs) {
    disk_table.AddRow(
        {run.label, least::TablePrinter::Fmt(run.report.wall_seconds, 2),
         least::TablePrinter::Fmt(run.report.throughput_jobs_per_sec, 1),
         least::TablePrinter::Fmt(static_cast<long long>(run.cache.hits)),
         least::TablePrinter::Fmt(static_cast<long long>(run.cache.misses)),
         least::TablePrinter::Fmt(
             static_cast<long long>(run.cache.evictions)),
         least::TablePrinter::Fmt(
             static_cast<double>(run.cache.peak_resident_bytes) / 1024.0, 1),
         run.deterministic ? "yes" : "NO"});
  }
  std::printf("%s\n", disk_table.ToString().c_str());

  const double off_jobs_per_sec = trace_runs[0].report.throughput_jobs_per_sec;
  std::printf("tracing overhead (%d threads, %d CSV jobs, 16-dataset "
              "cache, best of 3):\n",
              disk_threads, num_jobs);
  least::TablePrinter trace_table({"tracing", "wall s", "jobs/s",
                                   "overhead %", "events", "trace KiB",
                                   "deterministic"});
  for (const TraceRun& run : trace_runs) {
    const double overhead_pct =
        off_jobs_per_sec > 0
            ? 100.0 * (1.0 - run.report.throughput_jobs_per_sec /
                                 off_jobs_per_sec)
            : 0.0;
    trace_table.AddRow(
        {run.mode, least::TablePrinter::Fmt(run.report.wall_seconds, 2),
         least::TablePrinter::Fmt(run.report.throughput_jobs_per_sec, 1),
         run.mode == "off" ? "-"
                           : least::TablePrinter::Fmt(overhead_pct, 1),
         least::TablePrinter::Fmt(static_cast<long long>(run.events)),
         least::TablePrinter::Fmt(
             static_cast<double>(run.trace_bytes) / 1024.0, 1),
         run.deterministic ? "yes" : "NO"});
  }
  std::printf("%s\n", trace_table.ToString().c_str());

  const double disarmed_jobs_per_sec =
      failpoint_runs[0].report.throughput_jobs_per_sec;
  std::printf("failpoint overhead (%d threads, %d CSV jobs, 16-dataset "
              "cache, interleaved best of 5, vs disarmed):\n",
              disk_threads, num_jobs);
  least::TablePrinter failpoint_table(
      {"failpoints", "wall s", "jobs/s", "overhead %", "deterministic"});
  for (const FailpointRun& run : failpoint_runs) {
    const double overhead_pct =
        disarmed_jobs_per_sec > 0
            ? 100.0 * (1.0 - run.report.throughput_jobs_per_sec /
                                 disarmed_jobs_per_sec)
            : 0.0;
    failpoint_table.AddRow(
        {run.mode, least::TablePrinter::Fmt(run.report.wall_seconds, 2),
         least::TablePrinter::Fmt(run.report.throughput_jobs_per_sec, 1),
         run.mode == "disarmed" ? "-"
                                : least::TablePrinter::Fmt(overhead_pct, 1),
         run.deterministic ? "yes" : "NO"});
  }
  std::printf("%s\n", failpoint_table.ToString().c_str());

  // ---- Over-budget single dataset: sharded streaming via least-sparse. ----
  // One dataset 4x larger than its cache budget; only the row-range-sharded
  // CsvDataSource can run it under the budget at all. Reported against the
  // all-in-RAM learner run, with the bitwise-identity check.
  const int big_n = std::max(800, static_cast<int>(6000 * scale));
  const int big_d = 16;
  const int shard_rows_count = std::max(1, big_n / 16);
  least::BenchmarkConfig big_cfg;
  big_cfg.d = big_d;
  big_cfg.n = big_n;
  big_cfg.seed = 20260729;
  const least::DenseMatrix big_x = least::MakeBenchmarkInstance(big_cfg).x;
  const size_t big_bytes = big_x.size() * sizeof(double);
  const size_t shard_budget = big_bytes / 4;
  const std::string big_csv =
      (fs::temp_directory_path() / "least_bench_overbudget.csv").string();
  (void)least::WriteMatrixCsv(big_csv, big_x);
  least::LearnOptions sparse_opt;
  sparse_opt.max_outer_iterations = 6;
  sparse_opt.max_inner_iterations = 60;
  sparse_opt.batch_size = 256;
  sparse_opt.lambda1 = 0.05;
  sparse_opt.learning_rate = 0.03;
  sparse_opt.filter_threshold = 0.05;
  sparse_opt.init_density = 0.0;
  sparse_opt.seed = 7;
  least::LeastSparseLearner sparse_learner(sparse_opt);
  std::vector<std::pair<int, int>> all_pairs;
  for (int i = 0; i < big_d; ++i) {
    for (int j = 0; j < big_d; ++j) {
      if (i != j) all_pairs.push_back({i, j});
    }
  }
  sparse_learner.set_candidate_edges(all_pairs);

  least::Stopwatch ram_watch;
  least::OwningDenseDataSource big_ram(big_x, "over-budget");
  const least::SparseLearnResult ram_result = sparse_learner.Fit(big_ram);
  const double ram_seconds = ram_watch.Seconds();

  least::DatasetCache shard_cache(shard_budget);
  least::CsvSourceOptions shard_csv_opt;
  shard_csv_opt.has_header = false;
  shard_csv_opt.cache = &shard_cache;
  shard_csv_opt.shard_rows = shard_rows_count;
  least::CsvDataSource big_disk(big_csv, shard_csv_opt);
  least::Stopwatch shard_watch;
  const least::SparseLearnResult shard_result = sparse_learner.Fit(big_disk);
  const double shard_seconds = shard_watch.Seconds();

  // Same dataset, same budget, same shard geometry — but the bytes arrive
  // over loopback HTTP as `Range:` requests from a live origin.
  auto bitwise_csr = [](const least::CsrMatrix& a, const least::CsrMatrix& b) {
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           a.row_ptr() == b.row_ptr() && a.col_idx() == b.col_idx() &&
           a.values() == b.values();
  };
  double remote_seconds = 0.0;
  bool remote_deterministic = false;
  least::DatasetCache::Stats remote_stats;
  least::HttpConnectionPool::Stats remote_transport;
  least::DatasetCache remote_cache(shard_budget);
  {
    least::ThreadPool origin_pool(1);
    least::FleetScheduler origin_scheduler(&origin_pool, {});
    least::JobJournal origin_journal;
    origin_scheduler.set_journal(&origin_journal);
    least::FleetServiceOptions service_options;
    service_options.data_root = fs::temp_directory_path().string();
    least::FleetService service(&origin_scheduler, &origin_journal,
                                service_options);
    least::HttpServer origin_server(service.AsHandler(), {});
    const least::Status origin_started = origin_server.Start();
    if (origin_started.ok()) {
      least::HttpSourceOptions remote_opt;
      remote_opt.has_header = false;
      remote_opt.cache = &remote_cache;
      remote_opt.shard_rows = shard_rows_count;
      const std::string url = "http://127.0.0.1:" +
                              std::to_string(origin_server.port()) +
                              "/data/least_bench_overbudget.csv";
      least::Result<std::shared_ptr<const least::DataSource>> remote =
          least::MakeHttpSource(url, remote_opt);
      if (remote.ok() && remote.value()->Prepare().ok()) {
        least::Stopwatch remote_watch;
        const least::SparseLearnResult remote_result =
            sparse_learner.Fit(*remote.value());
        remote_seconds = remote_watch.Seconds();
        remote_stats = remote_cache.stats();
        remote_transport =
            static_cast<const least::HttpDataSource*>(remote.value().get())
                ->transport_stats();
        remote_deterministic =
            bitwise_csr(remote_result.raw_weights, ram_result.raw_weights);
      } else {
        std::fprintf(stderr, "remote fit skipped: %s\n",
                     remote.ok() ? "prepare failed"
                                 : remote.status().ToString().c_str());
      }
      origin_server.Stop();
    } else {
      std::fprintf(stderr, "remote fit skipped: %s\n",
                   origin_started.ToString().c_str());
    }
    origin_scheduler.CancelAll();
    origin_scheduler.Wait();
  }
  fs::remove(big_csv);

  const least::DatasetCache::Stats shard_stats = shard_cache.stats();
  const bool shard_deterministic =
      bitwise_csr(shard_result.raw_weights, ram_result.raw_weights);
  std::printf("over-budget single dataset (%dx%d = %zu bytes, budget %zu "
              "bytes = 4x smaller, %d-row shards):\n",
              big_n, big_d, big_bytes, shard_budget, shard_rows_count);
  least::TablePrinter shard_table({"data plane", "fit s", "loads", "evicted",
                                   "peak KiB", "budget KiB", "deterministic"});
  shard_table.AddRow({"in-RAM", least::TablePrinter::Fmt(ram_seconds, 2), "0",
                      "0", least::TablePrinter::Fmt(
                               static_cast<double>(big_bytes) / 1024.0, 1),
                      "-", "yes"});
  shard_table.AddRow(
      {"sharded CSV", least::TablePrinter::Fmt(shard_seconds, 2),
       least::TablePrinter::Fmt(static_cast<long long>(shard_stats.misses)),
       least::TablePrinter::Fmt(
           static_cast<long long>(shard_stats.evictions)),
       least::TablePrinter::Fmt(
           static_cast<double>(shard_stats.peak_resident_bytes) / 1024.0, 1),
       least::TablePrinter::Fmt(static_cast<double>(shard_budget) / 1024.0,
                                1),
       shard_deterministic ? "yes" : "NO"});
  shard_table.AddRow(
      {"remote HTTP", least::TablePrinter::Fmt(remote_seconds, 2),
       least::TablePrinter::Fmt(static_cast<long long>(remote_stats.misses)),
       least::TablePrinter::Fmt(
           static_cast<long long>(remote_stats.evictions)),
       least::TablePrinter::Fmt(
           static_cast<double>(remote_stats.peak_resident_bytes) / 1024.0,
           1),
       least::TablePrinter::Fmt(static_cast<double>(shard_budget) / 1024.0,
                                1),
       remote_deterministic ? "yes" : "NO"});
  std::printf("%s\n", shard_table.ToString().c_str());
  std::printf("remote transport: %lld fetches, %lld retries, %lld "
              "connection(s)\n\n",
              static_cast<long long>(remote_transport.fetches),
              static_cast<long long>(remote_transport.retries),
              static_cast<long long>(remote_transport.connections_created));

  // ---- Mixed workload: scheduling policy vs. small-job tail latency. ----
  // Worst case for FIFO: every batch-sized job arrives *before* the
  // latency-sensitive small ones, on a pool too narrow to hide them. Small
  // jobs carry a deadline (the priority comparator claims deadline-carrying
  // work first within a class); large jobs are plain batch work. The small
  // jobs cycle over a handful of shared CSV datasets through a cache that
  // cannot hold them all — the affinity policy's chance to group claims by
  // resident dataset instead of thrashing the LRU.
  const int num_small = std::max(24, static_cast<int>(120 * scale));
  const int num_large = std::max(3, num_small / 8);
  const int num_shared_datasets = 6;
  const size_t mixed_budget_datasets = 3;  // < num_shared_datasets: thrashes
  const std::string mixed_dir =
      (fs::temp_directory_path() / "least_bench_fleet_mixed").string();
  fs::remove_all(mixed_dir);
  fs::create_directories(mixed_dir);
  std::vector<std::string> small_csvs;
  size_t small_bytes = 0;
  for (int s = 0; s < num_shared_datasets; ++s) {
    least::GeneNetworkConfig config;
    config.num_genes = 12;
    config.num_edges = 20;
    config.num_samples = 120;
    config.seed = 5000 + static_cast<uint64_t>(s);
    const least::DenseMatrix x = least::MakeGeneNetwork(config).x;
    small_bytes = x.size() * sizeof(double);
    const std::string path =
        mixed_dir + "/small-" + std::to_string(s) + ".csv";
    (void)least::WriteMatrixCsv(path, x);
    small_csvs.push_back(path);
  }
  std::vector<std::string> large_csvs;
  for (int l = 0; l < num_large; ++l) {
    least::BenchmarkConfig big;
    big.d = 24;
    big.n = 480;
    big.seed = 6000 + static_cast<uint64_t>(l);
    const std::string path =
        mixed_dir + "/large-" + std::to_string(l) + ".csv";
    (void)least::WriteMatrixCsv(path, least::MakeBenchmarkInstance(big).x);
    large_csvs.push_back(path);
  }

  struct MixedRun {
    std::string policy;
    least::FleetReport report;
    double small_p50_ms = 0, small_p99_ms = 0, large_p99_ms = 0;
    least::DatasetCache::Stats cache;
    bool deterministic = true;
  };
  auto percentile = [](std::vector<double> v, double p) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const double rank = p * static_cast<double>(v.size() - 1);
    return v[static_cast<size_t>(rank + 0.5)];
  };
  std::vector<MixedRun> mixed_runs;
  least::DenseMatrix mixed_probe;  // job 0 under FIFO, the identity baseline
  for (const least::SchedPolicy policy :
       {least::SchedPolicy::kFifo, least::SchedPolicy::kPriority,
        least::SchedPolicy::kCacheAffinity}) {
    MixedRun run;
    run.policy = std::string(least::SchedPolicyName(policy));
    least::DatasetCache cache(mixed_budget_datasets * small_bytes);
    least::ThreadPool pool(2);
    least::FleetScheduler scheduler(&pool, {.seed = 7, .policy = policy});
    // Batch work first — the arrival order FIFO handles worst.
    for (int l = 0; l < num_large; ++l) {
      least::LearnJob job;
      job.name = "large-" + std::to_string(l);
      job.algorithm = least::Algorithm::kLeastDense;
      least::CsvSourceOptions opt;
      opt.has_header = false;
      opt.cache = &cache;
      job.data = least::MakeCsvSource(large_csvs[l], opt);
      job.options.max_outer_iterations = 30;
      job.options.max_inner_iterations = 120;
      job.options.tolerance = 1e-8;
      scheduler.Enqueue(std::move(job));
    }
    for (int s = 0; s < num_small; ++s) {
      least::LearnJob job;
      job.name = "small-" + std::to_string(s);
      job.algorithm = least::Algorithm::kLeastDense;
      least::CsvSourceOptions opt;
      opt.has_header = false;
      opt.cache = &cache;
      job.data = least::MakeCsvSource(
          small_csvs[static_cast<size_t>(s) % small_csvs.size()], opt);
      job.options.max_outer_iterations = 12;
      job.options.max_inner_iterations = 80;
      job.options.tolerance = 1e-6;
      job.deadline_ms = 500;  // latency-sensitive class
      scheduler.Enqueue(std::move(job));
    }
    run.report = scheduler.Wait();
    run.cache = cache.stats();
    std::vector<double> small_latency, large_latency;
    for (int64_t j = 0; j < scheduler.num_jobs(); ++j) {
      const least::JobRecord& record = scheduler.record(j);
      const double settle_ms = record.queue_ms + record.run_ms;
      if (record.name.rfind("small-", 0) == 0) {
        small_latency.push_back(settle_ms);
      } else {
        large_latency.push_back(settle_ms);
      }
    }
    run.small_p50_ms = percentile(small_latency, 0.50);
    run.small_p99_ms = percentile(small_latency, 0.99);
    run.large_p99_ms = percentile(large_latency, 0.99);
    const least::DenseMatrix& probe = scheduler.record(0).outcome.weights;
    if (policy == least::SchedPolicy::kFifo) {
      mixed_probe = probe;
    } else {
      run.deterministic =
          probe.SameShape(mixed_probe) &&
          least::MaxAbsDiff(probe, mixed_probe) == 0.0;
    }
    mixed_runs.push_back(std::move(run));
  }
  fs::remove_all(mixed_dir);

  std::printf("mixed workload (2 threads, %d large jobs enqueued ahead of "
              "%d deadline-carrying small jobs, %zu-dataset cache over %d "
              "shared datasets):\n",
              num_large, num_small, mixed_budget_datasets,
              num_shared_datasets);
  least::TablePrinter mixed_table({"policy", "wall s", "jobs/s",
                                   "small p50", "small p99", "large p99",
                                   "loads", "evicted", "deterministic"});
  for (const MixedRun& run : mixed_runs) {
    mixed_table.AddRow(
        {run.policy, least::TablePrinter::Fmt(run.report.wall_seconds, 2),
         least::TablePrinter::Fmt(run.report.throughput_jobs_per_sec, 1),
         least::TablePrinter::Fmt(run.small_p50_ms, 1),
         least::TablePrinter::Fmt(run.small_p99_ms, 1),
         least::TablePrinter::Fmt(run.large_p99_ms, 1),
         least::TablePrinter::Fmt(static_cast<long long>(run.cache.misses)),
         least::TablePrinter::Fmt(
             static_cast<long long>(run.cache.evictions)),
         run.deterministic ? "yes" : "NO"});
  }
  std::printf("%s\n", mixed_table.ToString().c_str());

  // ---- Machine-readable snapshot. ----
  std::FILE* json = std::fopen("BENCH_fleet.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n  \"jobs\": %d,\n  \"dataset_bytes\": %zu,\n"
                 "  \"disk_backed\": [\n",
                 num_jobs, dataset_bytes);
    for (size_t i = 0; i < disk_runs.size(); ++i) {
      const DiskRun& run = disk_runs[i];
      std::fprintf(
          json,
          "    {\"mode\": \"%s\", \"budget_datasets\": %zu, "
          "\"wall_seconds\": %.4f, \"jobs_per_sec\": %.2f, "
          "\"cache_hits\": %lld, \"cache_loads\": %lld, "
          "\"cache_evictions\": %lld, \"peak_resident_bytes\": %zu, "
          "\"deterministic\": %s}%s\n",
          run.label.c_str(), run.budget_datasets, run.report.wall_seconds,
          run.report.throughput_jobs_per_sec,
          static_cast<long long>(run.cache.hits),
          static_cast<long long>(run.cache.misses),
          static_cast<long long>(run.cache.evictions),
          run.cache.peak_resident_bytes,
          run.deterministic ? "true" : "false",
          i + 1 < disk_runs.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"tracing\": [\n");
    for (size_t i = 0; i < trace_runs.size(); ++i) {
      const TraceRun& run = trace_runs[i];
      const double overhead_pct =
          off_jobs_per_sec > 0
              ? 100.0 * (1.0 - run.report.throughput_jobs_per_sec /
                                   off_jobs_per_sec)
              : 0.0;
      std::fprintf(
          json,
          "    {\"mode\": \"%s\", \"wall_seconds\": %.4f, "
          "\"jobs_per_sec\": %.2f, \"overhead_pct\": %.2f, "
          "\"events\": %lld, \"trace_bytes\": %llu, "
          "\"deterministic\": %s}%s\n",
          run.mode.c_str(), run.report.wall_seconds,
          run.report.throughput_jobs_per_sec, overhead_pct,
          static_cast<long long>(run.events),
          static_cast<unsigned long long>(run.trace_bytes),
          run.deterministic ? "true" : "false",
          i + 1 < trace_runs.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"failpoints\": [\n");
    for (size_t i = 0; i < failpoint_runs.size(); ++i) {
      const FailpointRun& run = failpoint_runs[i];
      const double overhead_pct =
          disarmed_jobs_per_sec > 0
              ? 100.0 * (1.0 - run.report.throughput_jobs_per_sec /
                                   disarmed_jobs_per_sec)
              : 0.0;
      std::fprintf(json,
                   "    {\"mode\": \"%s\", \"wall_seconds\": %.4f, "
                   "\"jobs_per_sec\": %.2f, \"overhead_pct\": %.2f, "
                   "\"deterministic\": %s}%s\n",
                   run.mode.c_str(), run.report.wall_seconds,
                   run.report.throughput_jobs_per_sec, overhead_pct,
                   run.deterministic ? "true" : "false",
                   i + 1 < failpoint_runs.size() ? "," : "");
    }
    std::fprintf(
        json,
        "  ],\n  \"single_dataset_over_budget\": {\n"
        "    \"rows\": %d, \"cols\": %d, \"dataset_bytes\": %zu,\n"
        "    \"budget_bytes\": %zu, \"shard_rows\": %d,\n"
        "    \"in_ram_fit_seconds\": %.4f, \"sharded_fit_seconds\": %.4f,\n"
        "    \"shard_loads\": %lld, \"shard_evictions\": %lld,\n"
        "    \"peak_resident_bytes\": %zu, \"deterministic\": %s,\n"
        "    \"remote_fit_seconds\": %.4f, \"remote_fetches\": %lld,\n"
        "    \"remote_retries\": %lld, \"remote_peak_resident_bytes\": %zu,"
        "\n    \"remote_deterministic\": %s\n  },\n",
        big_n, big_d, big_bytes, shard_budget, shard_rows_count, ram_seconds,
        shard_seconds, static_cast<long long>(shard_stats.misses),
        static_cast<long long>(shard_stats.evictions),
        shard_stats.peak_resident_bytes,
        shard_deterministic ? "true" : "false", remote_seconds,
        static_cast<long long>(remote_transport.fetches),
        static_cast<long long>(remote_transport.retries),
        remote_stats.peak_resident_bytes,
        remote_deterministic ? "true" : "false");
    std::fprintf(json,
                 "  \"mixed_workload\": {\n"
                 "    \"small_jobs\": %d, \"large_jobs\": %d,\n"
                 "    \"shared_datasets\": %d, \"cache_budget_datasets\": "
                 "%zu,\n    \"runs\": [\n",
                 num_small, num_large, num_shared_datasets,
                 mixed_budget_datasets);
    for (size_t i = 0; i < mixed_runs.size(); ++i) {
      const MixedRun& run = mixed_runs[i];
      std::fprintf(
          json,
          "      {\"policy\": \"%s\", \"wall_seconds\": %.4f, "
          "\"jobs_per_sec\": %.2f, \"small_p50_ms\": %.2f, "
          "\"small_p99_ms\": %.2f, \"large_p99_ms\": %.2f, "
          "\"cache_loads\": %lld, \"cache_evictions\": %lld, "
          "\"deterministic\": %s}%s\n",
          run.policy.c_str(), run.report.wall_seconds,
          run.report.throughput_jobs_per_sec, run.small_p50_ms,
          run.small_p99_ms, run.large_p99_ms,
          static_cast<long long>(run.cache.misses),
          static_cast<long long>(run.cache.evictions),
          run.deterministic ? "true" : "false",
          i + 1 < mixed_runs.size() ? "," : "");
    }
    std::fprintf(json, "    ]\n  }\n}\n");
    std::fclose(json);
    std::printf("snapshot written to BENCH_fleet.json\n");
  }
  return 0;
}
