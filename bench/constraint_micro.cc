// Kernel microbenchmark backing the paper's complexity claims (Sections
// III and V): one evaluation (value + gradient) of each acyclicity
// constraint across graph sizes. The spectral bound must scale ~O(d²)
// dense / ~O(nnz) sparse, versus O(d³) for the expm/poly baselines —
// this is the mechanism behind the Fig. 4 row 4 speedups.

#include <benchmark/benchmark.h>

#include "constraint/expm_trace.h"
#include "constraint/poly_trace.h"
#include "constraint/power_iteration_constraint.h"
#include "constraint/spectral_bound.h"
#include "graph/graph_generator.h"
#include "util/rng.h"

namespace least {
namespace {

DenseMatrix DenseW(int d, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix w = DenseMatrix::RandomUniform(d, d, -0.5, 0.5, rng);
  w.FillDiagonal(0.0);
  return w;
}

CsrMatrix SparseW(int d, uint64_t seed) {
  Rng rng(seed);
  return SparseRandomDagWeights(GraphType::kErdosRenyi, d, 4.0, rng);
}

void BM_SpectralBoundDense(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  DenseMatrix w = DenseW(d, 3);
  DenseMatrix grad(d, d);
  SpectralBoundConstraint c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.Evaluate(w, &grad));
  }
  state.SetComplexityN(d);
}
BENCHMARK(BM_SpectralBoundDense)->RangeMultiplier(2)->Range(32, 512)
    ->Complexity(benchmark::oNSquared);

void BM_ExpmTrace(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  DenseMatrix w = DenseW(d, 3);
  DenseMatrix grad(d, d);
  ExpmTraceConstraint c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.Evaluate(w, &grad));
  }
  state.SetComplexityN(d);
}
BENCHMARK(BM_ExpmTrace)->RangeMultiplier(2)->Range(32, 512)
    ->Iterations(3)->Complexity(benchmark::oNCubed);

void BM_PolyTrace(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  DenseMatrix w = DenseW(d, 3);
  DenseMatrix grad(d, d);
  PolyTraceConstraint c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.Evaluate(w, &grad));
  }
  state.SetComplexityN(d);
}
BENCHMARK(BM_PolyTrace)->RangeMultiplier(2)->Range(32, 256)->Iterations(3);

void BM_PowerIterationConstraint(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  DenseMatrix w = DenseW(d, 3);
  DenseMatrix grad(d, d);
  PowerIterationConstraint c(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.Evaluate(w, &grad));
  }
  state.SetComplexityN(d);
}
BENCHMARK(BM_PowerIterationConstraint)->RangeMultiplier(2)->Range(32, 512);

void BM_SpectralBoundSparse(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  CsrMatrix w = SparseW(d, 5);
  std::vector<double> grad;
  SparseBoundWorkspace ws;
  SpectralBoundOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpectralBoundSparse(w, opts, &grad, &ws));
  }
  state.SetComplexityN(d);
}
// Near-linear in d at fixed average degree: runs up to 131k nodes — a size
// where a single dense expm evaluation would be ~10^15 flops.
BENCHMARK(BM_SpectralBoundSparse)->RangeMultiplier(4)->Range(512, 131072)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace least

BENCHMARK_MAIN();
