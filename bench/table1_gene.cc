// Reproduces Table I / "Table III" of the paper (Section VI-B): gene
// expression data analysis on Sachs-, E. coli- and Yeast-shaped networks.
// Reports #predicted edges, true positives, FDR, TPR, FPR, SHD, F1 and
// AUC-ROC for both NOTEARS and LEAST plus run time.
//
// The bnlearn/GeneNetWeaver datasets are replaced by synthetic regulatory
// networks with matching (d, #edges, n) — see DESIGN.md §4. E. coli and
// Yeast sizes scale with LEAST_BENCH_SCALE (NOTEARS is O(d³) per step).
//
// Expected shape (paper): LEAST slightly *better* than NOTEARS on every
// gene dataset (more true positives, higher F1/AUC), both far from perfect
// on the big networks; LEAST faster on CPU.

#include <cstdio>

#include "bench_common.h"
#include "data/gene_network.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace least::bench {
namespace {

struct AlgoResult {
  StructureMetrics metrics;
  double auc = 0.0;
  double seconds = 0.0;
};

AlgoResult RunOne(const GeneNetworkInstance& inst, const std::string& algo) {
  LearnOptions opt;
  opt.lambda1 = 0.05;
  opt.learning_rate = 0.03;
  opt.max_outer_iterations = 12;
  opt.max_inner_iterations = 120;
  AlgoResult out;
  ProtocolResult p = RunPaperProtocol(inst.x, inst.w_true, algo, opt);
  out.metrics = p.metrics;
  out.auc = p.auc;
  out.seconds = p.seconds;
  return out;
}

int Run() {
  const double scale = Scale(0.05);
  PrintBanner("Table I: gene expression analysis, NOTEARS vs LEAST", scale);

  TablePrinter table({"dataset", "d", "n", "edges", "algo", "pred", "TP",
                      "FDR", "TPR", "FPR", "SHD", "F1", "AUC", "time (s)"});
  for (GeneProfile profile :
       {GeneProfile::kSachs, GeneProfile::kEcoli, GeneProfile::kYeast}) {
    GeneNetworkConfig cfg = GeneConfigForProfile(profile, scale);
    cfg.seed = 17;
    GeneNetworkInstance inst = MakeGeneNetwork(cfg);
    for (const std::string& algo : {std::string("notears"),
                                    std::string("least")}) {
      AlgoResult r = RunOne(inst, algo);
      char fpr[32];
      std::snprintf(fpr, sizeof(fpr), "%.2e", r.metrics.fpr);
      table.AddRow({GeneProfileName(profile), std::to_string(cfg.num_genes),
                    std::to_string(cfg.num_samples),
                    std::to_string(inst.actual_edges), algo,
                    TablePrinter::Fmt(r.metrics.pred_edges),
                    TablePrinter::Fmt(r.metrics.true_positive),
                    TablePrinter::Fmt(r.metrics.fdr, 3),
                    TablePrinter::Fmt(r.metrics.tpr, 3), fpr,
                    TablePrinter::Fmt(r.metrics.shd),
                    TablePrinter::Fmt(r.metrics.f1, 3),
                    TablePrinter::Fmt(r.auc, 3),
                    TablePrinter::Fmt(r.seconds, 1)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper reference (full size): Sachs F1 0.412/0.437, AUC 0.925/0.947; "
      "E.coli F1 0.073/0.108; Yeast F1 0.082/0.119 (NOTEARS/LEAST) — LEAST "
      "consistently a touch better on gene data.\n");
  return 0;
}

}  // namespace
}  // namespace least::bench

int main() { return least::bench::Run(); }
